"""Backward derivation: the inference rules of Fig. 6 as constraint emission.

Walks a statement backwards from a post-annotation, producing the
pre-annotation and emitting linear constraints into the LP:

* (Q-Tick)    — binomial composition with the constant cost vector
* (Q-Assign)  — substitution
* (Q-Sample)  — expectation w.r.t. the distribution's raw moments
* (Q-Seq)     — right-to-left fold
* (Q-Prob)    — probability-weighted ⊕ of the branch pre-annotations
* (Q-Cond)    — fresh template + two (Q-Weaken) containments under Γ∧L, Γ∧¬L
* nondet      — fresh template + containments under Γ (demonic choice:
                the interval must cover both branches)
* (Q-Loop)    — fresh invariant template, containments at the back edge and
                the exit edge
* (Q-Call-*)  — the level summary of the callee's specs plus a (Q-Weaken)
                containment between the summary post and the call-site post
* (Q-Weaken)  — Handelman certificates (:mod:`repro.logic.handelman`)

Certificate emission is the hot path of derivation: every containment emits
``2*(m+1)`` certificates under the *same* context, and the pre/post pairs of
branches and loop edges revisit identical constraint sets.  The emitter
memoizes the certificate product sets per ``(context, degree)``
(:func:`repro.logic.handelman.certificate_basis`), so within one containment
— and across all containments that share a context — the products are
enumerated once and streamed into the LP as precomputed columns.

In *unit-cost mode* (Appendix G, termination-moment analysis) every atomic
statement, branch point, and loop-guard evaluation is additionally composed
with the unit cost vector ``<1,...,1>``; tick costs are ignored (the measured
quantity is the number of evaluation steps, not the programmed cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.annotations import (
    MomentAnnotation,
    component_degree,
    fresh_annotation,
)
from repro.analysis.specs import SpecTable
from repro.lang.ast import (
    Assign,
    Call,
    IfBranch,
    NondetBranch,
    ProbBranch,
    Sample,
    Seq,
    Skip,
    Stmt,
    Tick,
    While,
)
from repro.logic.absint import ContextMap
from repro.logic.context import Context
from repro.logic.handelman import emit_nonneg_certificate
from repro.lp.problem import LPProblem


class AnalysisError(Exception):
    pass


@dataclass
class Deriver:
    lp: LPProblem
    cmap: ContextMap
    specs: SpecTable
    m: int
    template_degree: int
    variables: tuple[str, ...]
    unit_cost: bool = False
    upper_only: bool = False
    degree_cap: int | None = None
    _counter: int = field(default=0, init=False)
    _degrees: tuple[int, ...] = field(default=(), init=False)

    def __post_init__(self) -> None:
        # Component degrees are pure in (k, d, cap): compute the vector once
        # instead of per containment per component.
        self._degrees = tuple(
            component_degree(k, self.template_degree, self.degree_cap)
            for k in range(self.m + 1)
        )

    # -- helpers -----------------------------------------------------------------

    def _label(self, kind: str) -> str:
        self._counter += 1
        return f"{kind}{self._counter}"

    def _charge_step(self, ann: MomentAnnotation) -> MomentAnnotation:
        """Unit-cost composition for the termination-moment analysis."""
        if self.unit_cost:
            return ann.prefix_cost(1.0)
        return ann

    def _fresh(
        self, label: str, level: int, ctx: Context | None = None
    ) -> MomentAnnotation:
        ann = fresh_annotation(
            self.lp,
            self.m,
            self.template_degree,
            self.variables,
            label=label,
            restrict=level,
            upper_only=self.upper_only,
            degree_cap=self.degree_cap,
        )
        if ctx is not None:
            self.require_nonneg(ctx, ann, label)
        return ann

    def require_nonneg(
        self, ctx: Context, ann: MomentAnnotation, label: str
    ) -> None:
        """In upper-only mode potentials live in the semiring over [0, inf]
        (Theorem G.2 / the nonnegative-cost setting), so every template's
        upper ends must be certified nonnegative on its reachable states."""
        if not self.upper_only:
            return
        for k in range(1, self.m + 1):
            emit_nonneg_certificate(
                self.lp, ctx, ann.intervals[k].hi, self._degrees[k],
                label=f"{label}.nn{k}",
            )

    def contain(
        self,
        ctx: Context,
        big: MomentAnnotation,
        small: MomentAnnotation,
        label: str,
    ) -> None:
        """Emit ``Γ |= big ⊒ small``: interval containment per component.

        ``big.hi_k - small.hi_k >= 0`` and ``small.lo_k - big.lo_k >= 0``
        under ``ctx``, via Handelman certificates with products up to the
        component's template degree.  The differences are never materialized
        as polynomials — both operands stream into the certificate emitter's
        per-monomial builders (``minus=``) — and the hi/lo pair of every
        component reuses the same memoized certificate basis for ``ctx``.
        """
        for k in range(self.m + 1):
            degree = self._degrees[k]
            emit_nonneg_certificate(
                self.lp,
                ctx,
                big.intervals[k].hi,
                degree,
                label=f"{label}.hi{k}",
                minus=small.intervals[k].hi,
            )
            if self.upper_only:
                continue
            emit_nonneg_certificate(
                self.lp,
                ctx,
                small.intervals[k].lo,
                degree,
                label=f"{label}.lo{k}",
                minus=big.intervals[k].lo,
            )

    # -- the backward transformer ----------------------------------------------------

    def derive(self, stmt: Stmt, post: MomentAnnotation, level: int) -> MomentAnnotation:
        if isinstance(stmt, Skip):
            return self._charge_step(post)

        if isinstance(stmt, Tick):
            if self.unit_cost:
                return self._charge_step(post)
            return post.prefix_cost(stmt.cost)

        if isinstance(stmt, Assign):
            poly = stmt.expr.to_polynomial()
            return self._charge_step(post.substitute(stmt.var, poly))

        if isinstance(stmt, Sample):
            return self._charge_step(post.expect(stmt.var, stmt.dist))

        if isinstance(stmt, Seq):
            ann = post
            for s in reversed(stmt.stmts):
                ann = self.derive(s, ann, level)
            return ann

        if isinstance(stmt, ProbBranch):
            pre_then = self.derive(stmt.then_branch, post, level)
            pre_else = self.derive(stmt.else_branch, post, level)
            mixed = pre_then.prob_mix(stmt.prob, pre_else)
            return self._charge_step(mixed)

        if isinstance(stmt, IfBranch):
            pre_then = self.derive(stmt.then_branch, post, level)
            pre_else = self.derive(stmt.else_branch, post, level)
            ctx = self.cmap.pre_of(stmt)
            label = self._label("if")
            joined = self._fresh(label, level, ctx)
            self.contain(ctx.assume(stmt.cond), joined, pre_then, f"{label}.t")
            self.contain(ctx.assume(stmt.cond.negate()), joined, pre_else, f"{label}.e")
            return self._charge_step(joined)

        if isinstance(stmt, NondetBranch):
            pre_left = self.derive(stmt.left, post, level)
            pre_right = self.derive(stmt.right, post, level)
            ctx = self.cmap.pre_of(stmt)
            label = self._label("nd")
            joined = self._fresh(label, level, ctx)
            self.contain(ctx, joined, pre_left, f"{label}.l")
            self.contain(ctx, joined, pre_right, f"{label}.r")
            return self._charge_step(joined)

        if isinstance(stmt, While):
            head_ctx = self.cmap.head_of(stmt)
            label = self._label("loop")
            invariant = self._fresh(label, level, head_ctx)
            pre_body = self.derive(stmt.body, invariant, level)
            self.contain(
                head_ctx.assume(stmt.cond),
                invariant,
                self._charge_step(pre_body),
                f"{label}.back",
            )
            self.contain(
                head_ctx.assume(stmt.cond.negate()),
                invariant,
                self._charge_step(post),
                f"{label}.exit",
            )
            return invariant

        if isinstance(stmt, Call):
            sum_pre, sum_post = self.specs.summary(stmt.func, level)
            ctx_after = self.cmap.post_of(stmt)
            label = self._label(f"call_{stmt.func}")
            self.contain(ctx_after, sum_post, post, label)
            return self._charge_step(sum_pre)

        raise AnalysisError(f"unknown statement {stmt!r}")

    # -- function-level driver ----------------------------------------------------------

    def derive_function_specs(self, program, name: str) -> None:
        """Emit the constraints justifying every spec level of ``name``.

        For each level ``h``: derive the body backwards from the level-``h``
        post template and require the level-``h`` pre template to contain the
        derived pre-annotation under the function's pre-condition context.
        """
        fun = program.fun(name)
        spec = self.specs.spec(name)
        pre_ctx = self.cmap.fun_pre[name]
        exit_ctx = self.cmap.fun_exit[name]
        for h in range(self.m + 1):
            self.require_nonneg(pre_ctx, spec.pres[h], f"{name}.pre{h}")
            self.require_nonneg(exit_ctx, spec.posts[h], f"{name}.post{h}")
            derived = self.derive(fun.body, spec.posts[h], level=h)
            self.contain(pre_ctx, spec.pres[h], derived, f"{name}.spec{h}")
