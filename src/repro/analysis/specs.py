"""Function specifications for moment-polymorphic recursion.

Section 3.3: for every function ``f`` and restriction level ``h = 0..m`` the
context Δ holds an ``h``-restricted pre/post pair ``(Q_h(f), Q'_h(f))``
(components below ``h`` pinned to ``[0,0]``).  A call at level ``h`` uses the
⊕-sum of the specs at levels ``h..m`` — the fully unrolled form of rule
(Q-Call-Poly): the frame of a level-``h`` call is the level-``h+1`` summary,
whose own frame is the level-``h+2`` summary, and so on until the
monomorphic level ``m`` (rule Q-Call-Mono, empty frame).  Summing specs of
the *same* function is valid by the relaxation lemma (Lemma F.2), and rule
(Q-Weaken) closes the gap between the summed spec post and the call-site
post-annotation.

This realizes Example 2.6's "elimination sequence" with one spec template
per level and interval slack; see DESIGN.md section 5 for the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.annotations import MomentAnnotation, fresh_annotation
from repro.lp.problem import LPProblem


@dataclass
class FunSpec:
    """Per-level pre/post annotation templates for one function."""

    name: str
    pres: list[MomentAnnotation]
    posts: list[MomentAnnotation]


class SpecTable:
    """All function specs of a program, plus the level summaries."""

    def __init__(
        self,
        lp: LPProblem,
        functions: list[str],
        m: int,
        template_degree: int,
        variables: tuple[str, ...],
        upper_only: bool = False,
        degree_cap: int | None = None,
    ) -> None:
        self.m = m
        self.specs: dict[str, FunSpec] = {}
        self._summaries: dict[tuple[str, int], tuple[MomentAnnotation, MomentAnnotation]] = {}
        for name in functions:
            pres = []
            posts = []
            for h in range(m + 1):
                pres.append(
                    fresh_annotation(
                        lp, m, template_degree, variables,
                        label=f"{name}.pre{h}", restrict=h, upper_only=upper_only,
                        degree_cap=degree_cap,
                    )
                )
                posts.append(
                    fresh_annotation(
                        lp, m, template_degree, variables,
                        label=f"{name}.post{h}", restrict=h, upper_only=upper_only,
                        degree_cap=degree_cap,
                    )
                )
            self.specs[name] = FunSpec(name, pres, posts)

    def functions(self) -> list[str]:
        return list(self.specs)

    def spec(self, name: str) -> FunSpec:
        return self.specs[name]

    def summary(self, name: str, level: int) -> tuple[MomentAnnotation, MomentAnnotation]:
        """⊕-sum of the specs of ``name`` at levels ``level..m``.

        Cached per ``(name, level)``: the summary is pure template algebra
        over the (immutable) spec annotations, and call-heavy programs ask
        for the same summary at every call site.
        """
        key = (name, level)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        spec = self.specs[name]
        pre = MomentAnnotation.oplus_all(spec.pres[level:])
        post = MomentAnnotation.oplus_all(spec.posts[level:])
        self._summaries[key] = (pre, post)
        return pre, post
