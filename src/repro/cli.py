"""Command-line interface: ``python -m repro analyze program.appl``.

Mirrors the original tool's usage: the user supplies the program, the order
of the analyzed moment, and the maximal polynomial degree; the tool prints
symbolic interval bounds on the raw moments, derived central moments, and
optionally the Theorem 4.4 soundness report and a simulation cross-check.
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    AnalysisOptions,
    analyze,
    check_soundness,
    estimate_cost_statistics,
    parse_program,
)


def _parse_valuation(text: str) -> dict[str, float]:
    valuation: dict[str, float] = {}
    if not text:
        return valuation
    for piece in text.split(","):
        name, _, value = piece.partition("=")
        if not value:
            raise argparse.ArgumentTypeError(
                f"bad valuation entry {piece!r}; expected name=value"
            )
        valuation[name.strip()] = float(value)
    return valuation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Central moment analysis for cost accumulators "
        "(Wang-Hoffmann-Reps, PLDI 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze_cmd = sub.add_parser("analyze", help="derive moment bounds")
    analyze_cmd.add_argument("file", help="Appl source file (- for stdin)")
    analyze_cmd.add_argument(
        "--moments", type=int, default=2, help="moment order m (default 2)"
    )
    analyze_cmd.add_argument(
        "--degree", type=int, default=1,
        help="template degree d: the k-th moment uses degree k*d polynomials",
    )
    analyze_cmd.add_argument(
        "--degree-cap", type=int, default=None,
        help="cap on any component's polynomial degree",
    )
    analyze_cmd.add_argument(
        "--at", type=_parse_valuation, default={},
        help="evaluation valuation, e.g. --at d=10,x=0",
    )
    analyze_cmd.add_argument(
        "--check", action="store_true",
        help="check the Theorem 4.4 soundness side conditions",
    )
    analyze_cmd.add_argument(
        "--simulate", type=int, default=0, metavar="N",
        help="cross-check with N Monte-Carlo runs",
    )
    return parser


def run(argv: list[str] | None = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file) as handle:
            source = handle.read()
    program = parse_program(source)

    valuations = (args.at,) if args.at else None
    options = AnalysisOptions(
        moment_degree=args.moments,
        template_degree=args.degree,
        degree_cap=args.degree_cap,
        objective_valuations=valuations,
    )
    result = analyze(program, options)
    print(result.summary(), file=out)

    if args.check:
        report = check_soundness(program, args.moments * args.degree)
        print(report.summary(), file=out)

    if args.simulate:
        stats = estimate_cost_statistics(
            program, n=args.simulate, seed=0, initial=args.at or None,
            degree=max(2, args.moments),
        )
        print(
            f"simulation ({stats.samples} runs): mean {stats.mean:.4g}, "
            f"variance {stats.central[2]:.4g}",
            file=out,
        )
    return 0


def main() -> None:
    sys.exit(run())
