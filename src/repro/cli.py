"""Command-line interface: ``python -m repro analyze program.appl``.

Mirrors the original tool's usage: the user supplies the program, the order
of the analyzed moment, and the maximal polynomial degree; the tool prints
symbolic interval bounds on the raw moments, derived central moments, and
optionally the Theorem 4.4 soundness report and a simulation cross-check.

``python -m repro batch`` runs the whole benchmark registry (optionally
filtered by name prefix) through the concurrent batch driver
(:func:`repro.analyze_many`) and prints one summary row per program.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import (
    AnalysisOptions,
    analyze,
    analyze_many,
    check_soundness,
    estimate_cost_statistics,
    parse_program,
)
from repro.lp.backends import available_backends


def _parse_valuation(text: str) -> dict[str, float]:
    valuation: dict[str, float] = {}
    if not text:
        return valuation
    for piece in text.split(","):
        name, _, value = piece.partition("=")
        if not value:
            raise argparse.ArgumentTypeError(
                f"bad valuation entry {piece!r}; expected name=value"
            )
        valuation[name.strip()] = float(value)
    return valuation


def _add_backend_flag(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--backend", choices=available_backends(), default=None,
        help="LP backend (default: incremental warm-started HiGHS)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Central moment analysis for cost accumulators "
        "(Wang-Hoffmann-Reps, PLDI 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze_cmd = sub.add_parser("analyze", help="derive moment bounds")
    analyze_cmd.add_argument("file", help="Appl source file (- for stdin)")
    analyze_cmd.add_argument(
        "--moments", type=int, default=2, help="moment order m (default 2)"
    )
    analyze_cmd.add_argument(
        "--degree", type=int, default=1,
        help="template degree d: the k-th moment uses degree k*d polynomials",
    )
    analyze_cmd.add_argument(
        "--degree-cap", type=int, default=None,
        help="cap on any component's polynomial degree",
    )
    analyze_cmd.add_argument(
        "--at", type=_parse_valuation, default={},
        help="evaluation valuation, e.g. --at d=10,x=0",
    )
    analyze_cmd.add_argument(
        "--check", action="store_true",
        help="check the Theorem 4.4 soundness side conditions",
    )
    analyze_cmd.add_argument(
        "--simulate", type=int, default=0, metavar="N",
        help="cross-check with N Monte-Carlo runs",
    )
    _add_backend_flag(analyze_cmd)

    batch_cmd = sub.add_parser(
        "batch", help="analyze the benchmark registry concurrently"
    )
    batch_cmd.add_argument(
        "--prefix", default="",
        help="only run registry programs whose name starts with this",
    )
    batch_cmd.add_argument(
        "--moments", type=int, default=None,
        help="override the registered moment order",
    )
    batch_cmd.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="number of concurrent analyses (default: min(8, #programs))",
    )
    _add_backend_flag(batch_cmd)
    return parser


def _run_analyze(args, out) -> int:
    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file) as handle:
            source = handle.read()
    program = parse_program(source)

    valuations = (args.at,) if args.at else None
    options = AnalysisOptions(
        moment_degree=args.moments,
        template_degree=args.degree,
        degree_cap=args.degree_cap,
        objective_valuations=valuations,
        backend=args.backend,
    )
    result = analyze(program, options)
    print(result.summary(), file=out)

    if args.check:
        report = check_soundness(program, args.moments * args.degree)
        print(report.summary(), file=out)

    if args.simulate:
        stats = estimate_cost_statistics(
            program, n=args.simulate, seed=0, initial=args.at or None,
            degree=max(2, args.moments),
        )
        print(
            f"simulation ({stats.samples} runs): mean {stats.mean:.4g}, "
            f"variance {stats.central[2]:.4g}",
            file=out,
        )
    return 0


def _run_batch(args, out) -> int:
    from repro.programs import registry

    workload = {}
    for name, bench in sorted(registry.all_benchmarks().items()):
        if not name.startswith(args.prefix):
            continue
        options = AnalysisOptions(
            moment_degree=args.moments or bench.moment_degree,
            template_degree=bench.template_degree,
            degree_cap=bench.degree_cap,
            objective_valuations=(bench.valuation,) + tuple(bench.extra_valuations),
            backend=args.backend,
        )
        workload[name] = (registry.parsed(name), options)
    if not workload:
        print(f"no registry programs match prefix {args.prefix!r}", file=out)
        return 1

    start = time.perf_counter()
    results = analyze_many(workload, jobs=args.jobs)
    elapsed = time.perf_counter() - start

    width = max(len(name) for name in results)
    print(
        f"{'program':<{width}} {'E[C] interval':>26} {'V[C] hi':>12} "
        f"{'LP vars':>8} {'time (s)':>9}",
        file=out,
    )
    for name, result in results.items():
        interval = result.raw_interval(1)
        line = f"{name:<{width}} [{interval.lo:>11.4g}, {interval.hi:>11.4g}]"
        if result.raw.degree >= 2:
            line += f" {result.variance().hi:>12.4g}"
        else:
            line += f" {'-':>12}"
        line += f" {result.lp_variables:>8} {result.solve_seconds:>9.3f}"
        print(line, file=out)
    print(
        f"{len(results)} programs in {elapsed:.2f}s "
        f"(jobs={args.jobs or min(8, len(workload))})",
        file=out,
    )
    return 0


def run(argv: list[str] | None = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "batch":
        return _run_batch(args, out)
    return _run_analyze(args, out)


def main() -> None:
    sys.exit(run())
