"""Command-line interface: ``python -m repro analyze program.appl``.

Mirrors the original tool's usage: the user supplies the program, the order
of the analyzed moment, and the maximal polynomial degree; the tool prints
symbolic interval bounds on the raw moments, derived central moments, and
optionally the Theorem 4.4 soundness report and a simulation cross-check.

``python -m repro batch`` runs the whole benchmark registry (optionally
filtered by name prefix) through the sharded batch executor
(:func:`repro.service.executor.run_batch`) and prints one summary row per
program; failed programs are reported inline and make the exit code
non-zero (``--quiet`` hides the success rows, never the failures).
``--executor queue`` routes the workload through the durable job store
instead of an in-process pool.  ``python -m repro serve`` starts the HTTP
JSON API (:mod:`repro.service.server`); with ``--workers N`` it also runs
the durable-queue worker fleet behind ``POST /jobs`` / ``GET /metrics``.

``python -m repro jobs enqueue|status|drain`` scripts the same job store
without HTTP: enqueue one analysis (``--dedupe`` for content-addressed
idempotency), inspect queue counts or one job's full row, or drain the
queue with an ephemeral worker fleet (:mod:`repro.service.jobs`).

``python -m repro fuzz`` runs the differential soundness harness
(:mod:`repro.soundness.differential`): generated Appl programs are analyzed
and simulated with the vectorized Monte-Carlo engine, every inferred moment
interval is checked to bracket its empirical estimate up to the CLT margin,
and violations exit non-zero with a minimized reproducer under ``--out``.
``--budget SECONDS`` is the nightly deep mode (fresh seeds until the budget
is spent); the default one-shot mode is the tier-1 corpus.

``python -m repro fuzz campaign start|resume|status|report`` scales the
same harness to a durable, crash-safe campaign over the SQLite job store
(:mod:`repro.soundness.campaign`): the seed range is sharded into queue
jobs with exactly-once accounting, violation reproducers land in a
content-addressed corpus before shards ack, worker-killing programs are
quarantined with provenance, and generation is reweighted toward
under-covered feature buckets.  ``resume`` after any crash replays only
unfinished shards, byte-identically.

``repro analyze --profile [N]`` runs each pipeline stage under ``cProfile``
and prints the top-N cumulative hotspots per stage, the LP reduction
layer's presolve statistics (columns eliminated by rule, rows
deduped/vacuous, component count and sizes, per-component solve times), and
the derivation-vs-solve wall-time split — the starting point for
performance work.  ``--no-lp-reduce`` (``analyze``, ``batch``, ``fuzz``)
bypasses the reduction layer for this run, mirroring the process-wide
``REPRO_DISABLE_LP_REDUCE`` switch.

``--deadline SECONDS`` (``analyze``, ``fuzz``) caps analysis wall clock:
``analyze`` fails fast with an analysis-deadline error (exit code 2), or —
with ``--degrade`` — falls back to the highest fully-solved moment degree
and marks the result as degraded; ``fuzz`` classifies over-deadline cases
as ``analysis-timeout`` instead of stalling the corpus.  ``serve
--job-timeout SECONDS`` caps each queued job's runtime by letting a hung
job's lease expire for re-delivery (see :mod:`repro.service.jobs`).

``--cache-dir`` (``analyze``, ``batch``, ``serve``) attaches the
content-addressed artifact cache at the given directory, so repeated
analyses of unchanged programs — across commands, processes, and sessions —
reuse every derived stage.  ``serve`` defaults to the user cache directory
(``~/.cache/repro``); the one-shot commands default to no disk cache.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro import (
    AnalysisOptions,
    AnalysisPipeline,
    check_soundness,
    estimate_cost_statistics,
    parse_program,
)
from repro.deadline import AnalysisTimeout
from repro.lp.backends import available_backends


def _parse_valuation(text: str) -> dict[str, float]:
    valuation: dict[str, float] = {}
    if not text:
        return valuation
    for piece in text.split(","):
        name, _, value = piece.partition("=")
        if not value:
            raise argparse.ArgumentTypeError(
                f"bad valuation entry {piece!r}; expected name=value"
            )
        valuation[name.strip()] = float(value)
    return valuation


def _add_backend_flag(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--backend", choices=available_backends(), default=None,
        help="LP backend (default: incremental warm-started HiGHS)",
    )
    cmd.add_argument(
        "--no-lp-reduce", action="store_true",
        help="solve the raw LP directly, bypassing the presolve/"
        "decomposition reduction layer (repro.lp.reduce)",
    )
    cmd.add_argument(
        "--lp-jobs", type=int, default=None, metavar="N",
        help="LP block-solve worker processes: unset reads REPRO_LP_JOBS "
        "(unset means sequential), 0 means one per CPU, 1 means sequential; "
        "in process-mode batch runs --workers takes precedence and workers "
        "solve sequentially",
    )


def _add_cache_flag(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist analysis artifacts in a content-addressed cache at DIR "
        "(shared across processes and sessions)",
    )


def _make_cache(args, *, default_on: bool = False):
    from repro.service.cache import ArtifactCache

    if getattr(args, "no_cache", False):
        return None  # explicit opt-out wins over --cache-dir
    if args.cache_dir:
        return ArtifactCache(args.cache_dir)
    if default_on:
        return ArtifactCache()
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Central moment analysis for cost accumulators "
        "(Wang-Hoffmann-Reps, PLDI 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze_cmd = sub.add_parser("analyze", help="derive moment bounds")
    analyze_cmd.add_argument("file", help="Appl source file (- for stdin)")
    analyze_cmd.add_argument(
        "--moments", type=int, default=2, help="moment order m (default 2)"
    )
    analyze_cmd.add_argument(
        "--degree", type=int, default=1,
        help="template degree d: the k-th moment uses degree k*d polynomials",
    )
    analyze_cmd.add_argument(
        "--degree-cap", type=int, default=None,
        help="cap on any component's polynomial degree",
    )
    analyze_cmd.add_argument(
        "--at", type=_parse_valuation, default={},
        help="evaluation valuation, e.g. --at d=10,x=0",
    )
    analyze_cmd.add_argument(
        "--check", action="store_true",
        help="check the Theorem 4.4 soundness side conditions",
    )
    analyze_cmd.add_argument(
        "--simulate", type=int, default=0, metavar="N",
        help="cross-check with N Monte-Carlo runs",
    )
    analyze_cmd.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the analysis; past it the run fails "
        "with an AnalysisTimeout (or degrades, with --degrade)",
    )
    analyze_cmd.add_argument(
        "--degrade", action="store_true",
        help="on timeout or LP failure, fall back to the highest moment "
        "degree that fully solves instead of failing (the result carries "
        "a DEGRADED provenance line)",
    )
    analyze_cmd.add_argument(
        "--profile", nargs="?", const=10, type=int, default=None, metavar="N",
        help="run each pipeline stage under cProfile and print the top N "
        "cumulative hotspots per stage (default N=10) plus the "
        "derivation-vs-solve wall-time split",
    )
    _add_backend_flag(analyze_cmd)
    _add_cache_flag(analyze_cmd)

    batch_cmd = sub.add_parser(
        "batch", help="analyze the benchmark registry concurrently"
    )
    batch_cmd.add_argument(
        "--prefix", default="",
        help="only run registry programs whose name starts with this",
    )
    batch_cmd.add_argument(
        "--moments", type=int, default=None,
        help="override the registered moment order",
    )
    batch_cmd.add_argument(
        "--jobs", "--workers", type=int, default=None, metavar="N", dest="jobs",
        help="number of concurrent analyses (default: min(8, #programs))",
    )
    batch_cmd.add_argument(
        "--executor", choices=("thread", "process", "queue"), default="thread",
        help="thread: overlap LP solves in one process; process: shard the "
        "workload across CPU cores (workers share --cache-dir); queue: "
        "enqueue durable jobs into a SQLite store drained by a worker "
        "fleet (--db joins an existing store, else an ephemeral one)",
    )
    batch_cmd.add_argument(
        "--db", default=None, metavar="PATH",
        help="queue executor: enqueue into this job store (a running "
        "'repro serve --workers N --db PATH' fleet drains it); default is "
        "an ephemeral store + fleet for just this batch",
    )
    batch_cmd.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="queue executor: give up waiting for the fleet after this long",
    )
    batch_cmd.add_argument(
        "--quiet", action="store_true",
        help="suppress per-program success rows; failures are still "
        "printed per program and the exit code is still non-zero",
    )
    _add_backend_flag(batch_cmd)
    _add_cache_flag(batch_cmd)

    check_cmd = sub.add_parser(
        "check",
        help="check tail-assertion specs against analyzer moment bounds",
        description="Parse a .spec file of assertions over the cost "
        "accumulator (moment intervals, tail probabilities, stddev, the "
        "timing-attack success rate), analyze the target program(s), and "
        "report a pass/fail/inconclusive verdict per assertion with the "
        "evidence (which inequality fired, at what moment order).",
    )
    check_cmd.add_argument(
        "target", nargs="?", default=None,
        help="Appl source file, '-' for stdin, or a registry program name "
        "(omitted in --suite mode)",
    )
    check_cmd.add_argument(
        "--spec", default=None, metavar="FILE",
        help="spec file to check the target against",
    )
    check_cmd.add_argument(
        "--suite", default=None, metavar="DIR",
        help="suite mode: check every *.spec under DIR against the "
        "registry programs its @programs directive names",
    )
    check_cmd.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a byte-stable machine-readable JSON report",
    )
    check_cmd.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on inconclusive verdicts too, not just failures",
    )
    check_cmd.add_argument(
        "--at", type=_parse_valuation, default=None,
        help="initial valuation override, e.g. --at d=10,x=0",
    )
    check_cmd.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="suite mode: number of concurrent analyses",
    )
    check_cmd.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="suite mode: batch executor (default thread)",
    )
    check_cmd.add_argument(
        "--verbose", action="store_true",
        help="suite mode: show per-assertion evidence for passing programs too",
    )
    _add_cache_flag(check_cmd)

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="differential soundness fuzzing (analyzer vs. vectorized MC)",
        description="Generate random well-formed Appl programs, analyze "
        "them, simulate them with the batched Monte-Carlo engine, and "
        "check that every inferred moment interval brackets its empirical "
        "estimate up to the CLT sampling-error margin.  Violations are "
        "minimized and dumped under --out; the exit code is non-zero iff "
        "any violation was found.",
    )
    fuzz_cmd.add_argument(
        "--seed", type=int, default=0, help="first generator seed (default 0)"
    )
    fuzz_cmd.add_argument(
        "--count", type=int, default=50,
        help="cases per batch (default 50); with --budget, batches of this "
        "size are generated at consecutive seeds until time runs out",
    )
    fuzz_cmd.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="deep mode: keep fuzzing fresh seeds until SECONDS have elapsed",
    )
    fuzz_cmd.add_argument(
        "--samples", type=int, default=4000,
        help="Monte-Carlo trajectories per case (default 4000)",
    )
    fuzz_cmd.add_argument(
        "--z", type=float, default=5.0,
        help="CLT sigma multiplier for the bracketing margin (default 5)",
    )
    fuzz_cmd.add_argument(
        "--max-steps", type=int, default=200_000,
        help="per-trajectory step budget before a run counts as a timeout",
    )
    fuzz_cmd.add_argument(
        "--out", default="fuzz-violations", metavar="DIR",
        help="directory for minimized violation reproducers "
        "(default ./fuzz-violations)",
    )
    fuzz_cmd.add_argument(
        "--no-minimize", action="store_true",
        help="dump violating programs as generated, without shrinking",
    )
    fuzz_cmd.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-case wall-clock deadline (analysis and simulation each); "
        "cases past it classify as analysis-timeout instead of stalling "
        "the corpus",
    )
    fuzz_cmd.add_argument(
        "--jobs", "--workers", type=int, default=None, metavar="N", dest="jobs",
        help="concurrent analyses (default: min(8, #cases))",
    )
    fuzz_cmd.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="fan the analysis phase out over threads or processes",
    )
    _add_backend_flag(fuzz_cmd)
    _add_cache_flag(fuzz_cmd)

    fuzz_sub = fuzz_cmd.add_subparsers(dest="fuzz_command", metavar="")
    campaign_cmd = fuzz_sub.add_parser(
        "campaign",
        help="durable crash-safe fuzzing campaigns over the job queue",
        description="Run a corpus-scale differential-soundness sweep as a "
        "durable campaign: the seed range is partitioned into shard jobs "
        "on the SQLite/WAL job store and executed by the worker fleet, "
        "with exactly-once shard accounting, content-addressed violation "
        "reproducers persisted before each shard acks, quarantine for "
        "programs that crash or OOM workers, and coverage-guided "
        "generation.  'start' creates and drives the campaign; 'resume' "
        "continues after any crash (only unfinished shards run); 'status' "
        "and 'report' inspect durable state without running anything.",
    )
    campaign_cmd.add_argument(
        "action", choices=("start", "resume", "status", "report"),
        help="lifecycle verb",
    )
    campaign_cmd.add_argument(
        "--db", required=True, metavar="PATH",
        help="SQLite job-store file (shared with the queue/fleet; campaign "
        "tables live in the same file)",
    )
    campaign_cmd.add_argument(
        "--name", default="default", help="campaign name (default 'default')"
    )
    campaign_cmd.add_argument(
        "--dir", default=None, metavar="DIR",
        help="campaign output directory for the reproducer corpus and "
        "quarantine dumps (default: <db>.campaigns/<name>)",
    )
    campaign_cmd.add_argument(
        "--seed", type=int, default=0, help="first generator seed (default 0)"
    )
    campaign_cmd.add_argument(
        "--seeds", type=int, default=500, dest="seed_count", metavar="N",
        help="total seeds in the campaign (default 500)",
    )
    campaign_cmd.add_argument(
        "--shard-size", type=int, default=25, metavar="N",
        help="seeds per shard job (default 25)",
    )
    campaign_cmd.add_argument(
        "--samples", type=int, default=2000,
        help="Monte-Carlo trajectories per case (default 2000)",
    )
    campaign_cmd.add_argument(
        "--z", type=float, default=5.0,
        help="CLT sigma multiplier for the bracketing margin (default 5)",
    )
    campaign_cmd.add_argument(
        "--max-steps", type=int, default=200_000,
        help="per-trajectory step budget before a run counts as a timeout",
    )
    campaign_cmd.add_argument(
        "--deadline", type=float, default=30.0, metavar="SECONDS",
        help="per-case analysis/simulation deadline (default 30)",
    )
    campaign_cmd.add_argument(
        "--minimize-seconds", type=float, default=60.0, metavar="SECONDS",
        help="wall-clock cap on one reproducer minimization (default 60)",
    )
    campaign_cmd.add_argument(
        "--max-rss-mb", type=int, default=None, metavar="MB",
        help="RSS rlimit applied to workers and quarantine probes",
    )
    campaign_cmd.add_argument(
        "--bias-fraction", type=float, default=0.5, metavar="F",
        help="fraction of each shard generated with the coverage bias",
    )
    campaign_cmd.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="fleet size while driving the campaign (default 2)",
    )
    campaign_cmd.add_argument(
        "--visibility", type=float, default=60.0, metavar="SECONDS",
        help="shard-job lease length; a crashed worker's shard is "
        "re-delivered after this long (default 60)",
    )
    campaign_cmd.add_argument(
        "--wave", type=int, default=None, metavar="N",
        help="shards enqueued per coverage wave (default 4x workers, min 8)",
    )
    campaign_cmd.add_argument(
        "--wave-timeout", type=float, default=900.0, metavar="SECONDS",
        help="max wait for one wave before the driver re-plans (default 900)",
    )
    campaign_cmd.add_argument(
        "--chaos-crash-seeds", default="", metavar="S1,S2",
        help="drill hook: case seeds that hard-kill their worker "
        "(exercises quarantine end to end)",
    )
    campaign_cmd.add_argument(
        "--chaos-oom-seeds", default="", metavar="S1,S2",
        help="drill hook: case seeds that raise MemoryError in the worker",
    )
    campaign_cmd.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the status/report document as JSON",
    )
    _add_cache_flag(campaign_cmd)

    serve_cmd = sub.add_parser(
        "serve", help="start the HTTP JSON analysis API"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8000, help="TCP port (0 picks a free one)"
    )
    serve_cmd.add_argument(
        "--max-pipelines", type=int, default=128, metavar="N",
        help="how many warm per-program pipelines to keep (LRU)",
    )
    serve_cmd.add_argument(
        "--no-cache", action="store_true",
        help="serve without the on-disk artifact cache (memory only)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="size of the durable-queue worker fleet (0 = synchronous "
        "endpoints only, no /jobs)",
    )
    serve_cmd.add_argument(
        "--db", default=None, metavar="PATH",
        help="SQLite job-store path (default <cache dir>/jobs.sqlite3; "
        "giving --db without --workers enables the queue endpoints with "
        "an external fleet, e.g. 'repro jobs drain')",
    )
    serve_cmd.add_argument(
        "--visibility", type=float, default=60.0, metavar="SECONDS",
        help="job lease length: a crashed worker's job is re-delivered "
        "after this long without heartbeats (default 60)",
    )
    serve_cmd.add_argument(
        "--max-queued", type=int, default=None, metavar="N",
        help="backpressure: reject new jobs with HTTP 429 once the queue "
        "depth (queued + leased) reaches N (default unlimited)",
    )
    serve_cmd.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job runtime cap: past it the worker stops heartbeating "
        "so a hung job's lease expires and the job is re-delivered "
        "(a job payload's 'timeout' key overrides it; default uncapped)",
    )
    _add_cache_flag(serve_cmd)

    jobs_cmd = sub.add_parser(
        "jobs", help="inspect and drive the durable job queue"
    )
    jobs_sub = jobs_cmd.add_subparsers(dest="jobs_command", required=True)

    enq = jobs_sub.add_parser(
        "enqueue", help="add an analysis job to a job store"
    )
    enq.add_argument("file", help="Appl source file (- for stdin)")
    enq.add_argument("--db", required=True, metavar="PATH", help="job store")
    enq.add_argument("--moments", type=int, default=2)
    enq.add_argument("--degree", type=int, default=1)
    enq.add_argument(
        "--at", type=_parse_valuation, default={},
        help="evaluation valuation, e.g. --at d=10,x=0",
    )
    enq.add_argument("--priority", type=int, default=0)
    enq.add_argument(
        "--idempotency-key", default=None, metavar="KEY",
        help="at most one job ever exists per key; a duplicate enqueue "
        "returns the existing id",
    )
    enq.add_argument(
        "--dedupe", action="store_true",
        help="derive the idempotency key from the program + options content",
    )
    enq.add_argument("--max-attempts", type=int, default=3)
    enq.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its summary "
        "(exit 1 if it dead-letters)",
    )
    enq.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS")

    status = jobs_sub.add_parser(
        "status", help="queue counts, or one job's full status"
    )
    status.add_argument("id", nargs="?", type=int, default=None)
    status.add_argument("--db", required=True, metavar="PATH")
    status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    drain = jobs_sub.add_parser(
        "drain", help="run an ephemeral worker fleet until the queue is empty"
    )
    drain.add_argument("--db", required=True, metavar="PATH")
    drain.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="fleet size for the drain (default 2)",
    )
    drain.add_argument(
        "--visibility", type=float, default=60.0, metavar="SECONDS",
        help="lease length while draining",
    )
    drain.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up (exit 1) if the queue is not empty after this long",
    )
    _add_cache_flag(drain)
    return parser


def _run_analyze(args, out) -> int:
    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file) as handle:
            source = handle.read()
    program = parse_program(source)

    valuations = (args.at,) if args.at else None
    options = AnalysisOptions(
        moment_degree=args.moments,
        template_degree=args.degree,
        degree_cap=args.degree_cap,
        objective_valuations=valuations,
        backend=args.backend,
        lp_reduce=False if args.no_lp_reduce else None,
        lp_jobs=args.lp_jobs,
        deadline_seconds=args.deadline,
        degrade=args.degrade,
    )
    pipeline = AnalysisPipeline(program, artifacts=_make_cache(args))
    if args.profile is not None:
        result = _profiled_analyze(pipeline, options, args.profile, out)
    else:
        result = pipeline.analyze(options)
    print(result.summary(), file=out)

    if args.check:
        report = check_soundness(program, args.moments * args.degree)
        print(report.summary(), file=out)

    if args.simulate:
        stats = estimate_cost_statistics(
            program, n=args.simulate, seed=0, initial=args.at or None,
            degree=max(2, args.moments), engine="vectorized",
        )
        print(
            f"simulation ({stats.samples} runs): mean {stats.mean:.4g}, "
            f"variance {stats.central[2]:.4g}",
            file=out,
        )
    return 0


def _profiled_analyze(pipeline, options, top: int, out):
    """Run the pipeline stage by stage under cProfile (``--profile``).

    Perf work on the analyzer keeps re-deriving the same starting point —
    which stage dominates, and which functions inside it.  This prints, per
    stage (static/context/constraints/solve), the wall time and the top-N
    cumulative-time hotspots, so the next optimization PR starts from data
    instead of folklore.
    """
    import cProfile
    import io
    import pstats
    import time

    stages = [
        ("static", pipeline.static_info),
        ("context", pipeline.context_map),
        ("constraints", lambda: pipeline.constraint_system(options)),
        ("solve", lambda: pipeline.solve(options)),
    ]
    walls: dict[str, float] = {}
    for name, stage in stages:
        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.enable()
        staged = stage()
        profiler.disable()
        walls[name] = time.perf_counter() - start
        text = io.StringIO()
        stats = pstats.Stats(profiler, stream=text).sort_stats("cumulative")
        stats.print_stats(top)
        body = text.getvalue()
        # Drop pstats' preamble up to the table header; keep it compact.
        header = body.index("ncalls") if "ncalls" in body else 0
        print(f"--- profile: {name} stage ({walls[name]:.3f}s wall) ---", file=out)
        print(body[header:].rstrip() or "(nothing measurable)", file=out)
        if name == "solve":
            _print_reduction_stats(
                getattr(staged, "reduction", None),
                options.effective_lp_reduce(),
                out,
            )
    total = sum(walls.values())
    derivation = walls["static"] + walls["context"] + walls["constraints"]
    print(
        f"--- stage split: derivation {derivation:.3f}s "
        f"(static {walls['static']:.3f}s, context {walls['context']:.3f}s, "
        f"constraints {walls['constraints']:.3f}s), "
        f"solve {walls['solve']:.3f}s, total {total:.3f}s ---",
        file=out,
    )
    return pipeline.analyze(options)


def _print_reduction_stats(stats, enabled: bool, out) -> None:
    """Presolve statistics of the LP reduction layer (``--profile``)."""
    if not stats:
        if enabled:
            print(
                "--- lp reduction: unavailable (the reducer fell back to the "
                "direct backend for this system) ---",
                file=out,
            )
        else:
            print(
                "--- lp reduction: off (REPRO_DISABLE_LP_REDUCE or "
                "--no-lp-reduce) ---",
                file=out,
            )
        return
    print(
        f"--- lp reduction: {stats['cols']}->{stats['reduced_cols']} cols, "
        f"{stats['rows']}->{stats['reduced_rows']} rows, "
        f"{stats['nnz']}->{stats['reduced_nnz']} nnz "
        f"({stats['presolve_seconds']:.3f}s presolve) ---",
        file=out,
    )
    print(
        f"columns eliminated: {stats['eliminated_cols']} "
        f"(fixed {stats['fixed_cols']}, implied-slack {stats['slack_cols']}, "
        f"free {stats['free_cols']}, zero {stats['zero_cols']}); "
        f"rows deduped: {stats['dup_rows']}, vacuous: {stats['vacuous_rows']}",
        file=out,
    )
    sizes = ", ".join(str(s) for s in stats["component_sizes"][:8])
    more = len(stats["component_sizes"]) - 8
    print(
        f"components: {stats['components']} (sizes {sizes}"
        + (f", +{more} more" if more > 0 else "")
        + ")",
        file=out,
    )
    times = stats.get("block_solve_seconds") or []
    if times:
        shown = ", ".join(f"block {bid}: {sec:.3f}s" for bid, sec in times[:8])
        print(f"last solve per-component times: {shown}", file=out)
    stacked = stats.get("stacked_groups") or 0
    if stacked:
        sizes = ", ".join(str(s) for s in stats.get("stacked_sizes", [])[:8])
        print(
            f"stacked batches: {stacked} (group sizes {sizes}) — same-shape "
            "blocks solved as one block-diagonal LP",
            file=out,
        )
    _print_parallel_stats(stats.get("parallel"), out)


def _print_parallel_stats(par, out) -> None:
    """Parallel block-solve statistics (``--profile`` with --lp-jobs > 1)."""
    if not par:
        return
    wall = par["wall_seconds"]
    overhead = par["overhead_seconds"] + par["serialize_seconds"]
    share = overhead / wall if wall > 0 else 0.0
    print(
        f"--- lp parallel: {par['jobs']} workers, {par['tasks']} block solves "
        f"over {par['dispatches']} dispatches ---",
        file=out,
    )
    print(
        f"ipc: {par['payload_bytes'] / 1024:.1f} KiB shipped, "
        f"serialize {par['serialize_seconds']:.3f}s; dispatch wall "
        f"{wall:.3f}s, overhead {overhead:.3f}s ({share:.0%} of wall)",
        file=out,
    )
    per_worker = ", ".join(
        f"w{wid}: {par['worker_blocks'].get(wid, 0)} blocks/"
        f"{par['worker_seconds'].get(wid, 0.0):.3f}s"
        for wid in sorted(
            set(par["worker_blocks"]) | set(par["worker_seconds"])
        )
    )
    if per_worker:
        print(f"per-worker: {per_worker}", file=out)


def _run_batch(args, out) -> int:
    from repro.programs import registry

    workload = {}
    for name, bench in sorted(registry.all_benchmarks().items()):
        if not name.startswith(args.prefix):
            continue
        options = AnalysisOptions(
            moment_degree=args.moments or bench.moment_degree,
            template_degree=bench.template_degree,
            degree_cap=bench.degree_cap,
            objective_valuations=(bench.valuation,) + tuple(bench.extra_valuations),
            backend=args.backend,
            lp_reduce=False if args.no_lp_reduce else None,
            lp_jobs=args.lp_jobs,
        )
        workload[name] = (registry.parsed(name), options)
    if not workload:
        print(f"no registry programs match prefix {args.prefix!r}", file=out)
        return 1

    from repro.service.executor import run_batch

    store = None
    if args.executor == "queue" and args.db:
        from repro.service.store import JobStore

        store = JobStore(args.db)
    report = run_batch(
        workload,
        jobs=args.jobs,
        executor=args.executor,
        cache=_make_cache(args),
        store=store,
        timeout=getattr(args, "timeout", 600.0),
    )

    width = max(len(item.name) for item in report.items)
    quiet = getattr(args, "quiet", False)
    if not quiet:
        print(
            f"{'program':<{width}} {'E[C] interval':>26} {'V[C] hi':>12} "
            f"{'LP vars':>8} {'time (s)':>9}",
            file=out,
        )
    for item in report.items:
        if not item.ok:
            # Structured per-program failures are *always* surfaced — even
            # under --quiet a failing batch must say which program failed
            # and why, and exit non-zero, exactly like a transport error.
            print(f"{item.name:<{width}} FAILED: {item.error}", file=out)
            continue
        if quiet:
            continue
        print(_batch_row(item, width), file=out)
    failed = report.failures
    print(
        f"{len(report.items)} programs in {report.elapsed:.2f}s "
        f"(executor={report.executor}, jobs={report.jobs}"
        + (f", {len(failed)} failed" if failed else "")
        + ")",
        file=out,
    )
    return 1 if failed else 0


def _batch_row(item, width: int) -> str:
    """One success row of the batch table, whichever executor ran it.

    Thread/process executors hand back the in-memory result object; the
    queue executor hands back the worker's JSON document (the result never
    leaves the store as an object) — both carry the same numbers.
    """
    if item.result is not None:
        result = item.result
        interval = result.raw_interval(1)
        lo, hi = interval.lo, interval.hi
        var_hi = result.variance().hi if result.raw.degree >= 2 else None
        lp_vars = result.lp_variables
        seconds = result.solve_seconds
    else:
        doc = (item.payload or {}).get("result", {})
        evaluated = doc.get("evaluated", {})
        lo, hi = evaluated.get("E[C^1]", [float("nan")] * 2)
        var = evaluated.get("V[C]")
        var_hi = var[1] if var else None
        lp_vars = doc.get("lp_variables", 0)
        seconds = item.seconds
    line = f"{item.name:<{width}} [{lo:>11.4g}, {hi:>11.4g}]"
    line += f" {var_hi:>12.4g}" if var_hi is not None else f" {'-':>12}"
    line += f" {lp_vars:>8} {seconds:>9.3f}"
    return line


def _run_check(args, out) -> int:
    from repro.policy.evaluate import FAIL, INCONCLUSIVE, evaluate_spec
    from repro.policy.parser import parse_spec
    from repro.policy.report import (
        check_to_dict,
        render_check,
        render_suite,
        suite_to_dict,
        to_json,
    )
    from repro.policy.suite import load_suite, options_for, run_suite
    from repro.tail.bounds import costs_nonnegative

    if args.suite is not None:
        if args.target is not None or args.spec is not None:
            print("--suite does not take a target or --spec", file=out)
            return 2
        suite = load_suite(args.suite)
        result = run_suite(
            suite,
            jobs=args.jobs,
            executor=args.executor,
            cache=_make_cache(args, default_on=True),
        )
        if args.as_json:
            print(to_json(suite_to_dict(result.runs)), file=out, end="")
        else:
            print(render_suite(result.runs, verbose=args.verbose), file=out)
        if result.failed:
            return 1
        if args.strict and result.inconclusive:
            return 1
        return 0

    if args.spec is None or args.target is None:
        print("check needs a target and --spec (or --suite DIR)", file=out)
        return 2
    with open(args.spec) as handle:
        spec = parse_spec(handle.read(), path=args.spec)

    from repro.programs.registry import all_benchmarks

    bench = all_benchmarks().get(args.target)
    if bench is not None:
        program = bench.parse()
        options = options_for(spec, bench)
        name = args.target
    else:
        if args.target == "-":
            source = sys.stdin.read()
        else:
            with open(args.target) as handle:
                source = handle.read()
        program = parse_program(source)
        options = AnalysisOptions(
            moment_degree=spec.min_moment_degree(),
            template_degree=spec.options.get("degree", 1),
            degree_cap=spec.options.get("cap"),
            objective_valuations=(
                (dict(spec.valuation),) if spec.valuation else None
            ),
        )
        name = "<stdin>" if args.target == "-" else args.target
    if args.at is not None:
        options = replace(options, objective_valuations=(dict(args.at),))

    pipeline = AnalysisPipeline(program, artifacts=_make_cache(args))
    result = pipeline.analyze(options)
    check = evaluate_spec(
        spec,
        result,
        program=name,
        valuation=args.at,
        nonnegative_cost=costs_nonnegative(program),
    )
    if args.as_json:
        print(to_json(check_to_dict(check)), file=out, end="")
    else:
        print(render_check(check), file=out)
    if check.verdict == FAIL:
        return 1
    if args.strict and check.verdict == INCONCLUSIVE:
        return 1
    return 0


def _parse_seed_list(text: str) -> tuple[int, ...]:
    if not text:
        return ()
    return tuple(int(piece) for piece in text.split(",") if piece.strip())


def _run_campaign(args, out) -> int:
    import json as json_mod

    from repro.soundness.campaign import (
        CampaignConfig,
        build_report,
        run_campaign,
        start_campaign,
    )

    if args.action in ("status", "report"):
        try:
            report = build_report(args.db, args.name)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        if args.as_json:
            print(json_mod.dumps(report.to_dict(), indent=2), file=out)
        else:
            print(report.summary(), file=out)
            if args.action == "report" and report.quarantine:
                campaign_dir = args.dir or f"{args.db}.campaigns/{args.name}"
                print(
                    f"  inspect quarantine dumps under {campaign_dir}/quarantine",
                    file=out,
                )
        if args.action == "report":
            return 1 if report.reproducers else 0
        return 0

    config = CampaignConfig(
        seed_start=args.seed,
        seed_count=args.seed_count,
        shard_size=args.shard_size,
        samples=args.samples,
        z=args.z,
        max_steps=args.max_steps,
        deadline_seconds=args.deadline,
        minimize_seconds=args.minimize_seconds,
        max_rss_mb=args.max_rss_mb,
        bias_fraction=args.bias_fraction,
        chaos_oom_seeds=_parse_seed_list(args.chaos_oom_seeds),
        chaos_crash_seeds=_parse_seed_list(args.chaos_crash_seeds),
    )
    if args.action == "start":
        try:
            start_campaign(args.db, args.name, config, args.dir)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
    else:  # resume: the campaign must already exist; config comes from DB
        from repro.soundness.campaign import CampaignStore

        cstore = CampaignStore(args.db)
        try:
            if cstore.get_campaign(args.name) is None:
                print(
                    f"error: no campaign named {args.name!r} in {args.db};"
                    " use 'start'",
                    file=out,
                )
                return 2
        finally:
            cstore.close()
    report = run_campaign(
        args.db,
        args.name,
        workers=args.workers,
        cache_dir=args.cache_dir,
        visibility=args.visibility,
        wave=args.wave,
        wave_timeout=args.wave_timeout,
        log=lambda message: print(message, file=out),
    )
    if args.as_json:
        print(json_mod.dumps(report.to_dict(), indent=2), file=out)
    else:
        print(report.summary(), file=out)
    if not report.complete:
        print(
            f"campaign {args.name} did not finish; resume with:"
            f" repro fuzz campaign resume --db {args.db} --name {args.name}",
            file=out,
        )
        return 2
    return 1 if report.reproducers else 0


def _run_fuzz(args, out) -> int:
    import time

    from repro.programs.fuzz import generate_corpus
    from repro.soundness.differential import (
        DifferentialConfig,
        DifferentialReport,
        run_differential,
    )

    if getattr(args, "fuzz_command", None) == "campaign":
        return _run_campaign(args, out)

    config = DifferentialConfig(
        samples=args.samples,
        z=args.z,
        max_steps=args.max_steps,
        minimize=not args.no_minimize,
        deadline_seconds=args.deadline,
    )
    cache = _make_cache(args)
    combined = DifferentialReport()
    seed = args.seed
    started = time.perf_counter()
    while True:
        corpus = generate_corpus(args.count, seed=seed)
        report = run_differential(
            corpus,
            config,
            jobs=args.jobs,
            executor=args.executor,
            backend=args.backend,
            cache=cache,
            out_dir=args.out,
            lp_reduce=False if args.no_lp_reduce else None,
            lp_jobs=args.lp_jobs,
        )
        combined.outcomes.extend(report.outcomes)
        combined.elapsed = time.perf_counter() - started
        print(
            f"[seeds {seed}..{seed + args.count - 1}] " + report.summary(),
            file=out,
        )
        seed += args.count
        if args.budget is None or combined.elapsed >= args.budget:
            break
    if args.budget is not None:
        counts = ", ".join(
            f"{v} {k}" for k, v in combined.counts().items() if v
        )
        print(
            f"deep mode total: {len(combined.outcomes)} cases in "
            f"{combined.elapsed:.1f}s — {counts}",
            file=out,
        )
    return 1 if combined.violations else 0


def _run_serve(args, out) -> int:
    from repro.service.server import serve

    return serve(
        host=args.host,
        port=args.port,
        cache=_make_cache(args, default_on=True),
        max_pipelines=args.max_pipelines,
        db=args.db,
        workers=args.workers,
        visibility=args.visibility,
        max_queued=args.max_queued,
        job_timeout=args.job_timeout,
        out=out,
    )


def _run_jobs(args, out) -> int:
    from repro.service.store import JobStore

    if args.jobs_command == "enqueue":
        from repro.service.jobs import enqueue_analysis, wait_for_jobs

        if args.file == "-":
            source = sys.stdin.read()
        else:
            with open(args.file) as handle:
                source = handle.read()
        options = {"moments": args.moments, "degree": args.degree}
        if args.at:
            options["at"] = args.at
        store = JobStore(args.db)
        job_id, deduped = enqueue_analysis(
            store,
            source,
            options,
            priority=args.priority,
            idempotency_key=args.idempotency_key,
            dedupe=args.dedupe,
            max_attempts=args.max_attempts,
        )
        print(
            f"job {job_id} {'deduped (already enqueued)' if deduped else 'enqueued'}"
            f" (depth {store.depth()})",
            file=out,
        )
        if not args.wait:
            return 0
        (job,) = wait_for_jobs(store, [job_id], timeout=args.timeout)
        if job is not None and job.state == "done":
            summary = (job.result or {}).get("summary")
            if summary:
                print(summary, file=out)
            return 0
        state = job.state if job is not None else "missing"
        error = job.error if job is not None else None
        print(f"job {job_id} {state}" + (f": {error}" if error else ""), file=out)
        return 1

    if args.jobs_command == "status":
        import json as _json

        store = JobStore(args.db)
        if args.id is not None:
            job = store.get(args.id)
            if job is None:
                print(f"no job {args.id}", file=out)
                return 1
            if args.json:
                print(_json.dumps(job.to_dict(), sort_keys=True), file=out)
            else:
                doc = job.to_dict()
                for key in (
                    "id", "kind", "state", "priority", "attempts",
                    "max_attempts", "retries", "run_seconds", "error",
                ):
                    print(f"{key}: {doc[key]}", file=out)
            return 0
        counts = store.counts()
        totals = store.totals()
        if args.json:
            print(
                _json.dumps(
                    {"depth": store.depth(), "states": counts, **totals},
                    sort_keys=True,
                ),
                file=out,
            )
        else:
            states = ", ".join(f"{k} {v}" for k, v in counts.items())
            print(
                f"depth {store.depth()} ({states}); "
                f"{totals['enqueued']} enqueued, {totals['retried']} retried",
                file=out,
            )
        return 0

    # drain: an ephemeral fleet empties the queue, then exits.
    from repro.service.jobs import WorkerPool, drain_queue

    store = JobStore(args.db, visibility=args.visibility)
    recovered = store.recover_expired()
    if recovered:
        print(f"recovered {recovered} expired lease(s)", file=out)
    depth = store.depth()
    if depth == 0:
        print("queue already empty", file=out)
        return 0
    cache = _make_cache(args)
    cache_dir = (
        str(cache.directory.parent)
        if cache is not None and cache.directory is not None
        else None
    )
    pool = WorkerPool(
        args.db, args.workers, cache_dir,
        visibility=args.visibility, poll=0.05, drain_and_exit=True,
    ).start()
    try:
        drained = drain_queue(store, timeout=args.timeout)
        pool.join(timeout=30.0)
    finally:
        pool.stop(graceful=True, timeout=10.0)
    counts = store.counts()
    print(
        f"drained {depth} job(s) with {args.workers} worker(s): "
        f"{counts['done']} done, {counts['dead']} dead, "
        f"{counts['queued'] + counts['leased']} remaining",
        file=out,
    )
    return 0 if drained else 1


def run(argv: list[str] | None = None, out=None) -> int:
    if out is None:
        out = sys.stdout  # late-bound so embedders that swap stdout see theirs
    args = build_parser().parse_args(argv)
    try:
        if args.command == "batch":
            return _run_batch(args, out)
        if args.command == "check":
            return _run_check(args, out)
        if args.command == "fuzz":
            return _run_fuzz(args, out)
        if args.command == "serve":
            return _run_serve(args, out)
        if args.command == "jobs":
            return _run_jobs(args, out)
        return _run_analyze(args, out)
    except AnalysisTimeout as exc:
        print(f"error: {exc}", file=out)
        return 2


def main() -> None:
    sys.exit(run())
