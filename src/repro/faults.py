"""Seeded fault injection: deterministic failure at named points.

Every retry/backoff/respawn path added since the durable queue landed —
cache corrupt-entry discard, ``BEGIN IMMEDIATE`` transaction retries, LP
worker crash isolation, lease re-delivery — exists to survive failures that
are rare in a healthy environment.  This module makes those failures
*orderable*: arm a named fault point with a mode, a probability, and a
seed, and the exact same faults fire on every run.

Grammar (the ``REPRO_FAULTS`` environment variable)::

    REPRO_FAULTS=point:mode:prob:seed[,point:mode:prob:seed...]

* ``point`` — one of :data:`POINTS` (``cache.read``, ``cache.write``,
  ``store.tx``, ``lp.solve``, ``lp.worker_ipc``, ``pipeline.stage``).
* ``mode`` — ``raise`` (throw :class:`FaultInjected`), ``delay`` (sleep;
  ``delay@SECONDS`` picks the duration, default 0.05 — a long delay at
  ``pipeline.stage`` is the canonical hang injection), or ``corrupt``
  (flip bytes in the data passing through; only meaningful at points that
  call :func:`corrupt`, i.e. the cache I/O points).
* ``prob`` — per-visit firing probability in ``[0, 1]``.
* ``seed`` — the per-spec ``random.Random`` seed.  Same seed, same visit
  sequence ⇒ the same visits fire.  Deterministic chaos, reproducible
  drills.

When unarmed (no ``REPRO_FAULTS``, the overwhelmingly common case) every
hook compiles down to one module-level boolean test — no parsing, no RNG,
no lock.

Fired faults are counted per ``point:mode`` (:func:`counters`), which
``/metrics`` surfaces as ``repro_faults_injected_total`` so a chaos drill
can assert its faults actually happened.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "FaultInjected",
    "POINTS",
    "armed",
    "check",
    "configure",
    "corrupt",
    "counters",
]

POINTS = (
    "cache.read",
    "cache.write",
    "store.tx",
    "lp.solve",
    "lp.worker_ipc",
    "pipeline.stage",
)

MODES = ("raise", "delay", "corrupt")

_DEFAULT_DELAY = 0.05


class FaultInjected(RuntimeError):
    """A ``raise``-mode fault point fired."""


@dataclass
class _FaultSpec:
    point: str
    mode: str
    prob: float
    seed: int
    delay_seconds: float = _DEFAULT_DELAY
    rng: random.Random = field(init=False)
    lock: threading.Lock = field(init=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)
        self.lock = threading.Lock()

    def fires(self) -> bool:
        if self.prob >= 1.0:
            return True
        with self.lock:
            return self.rng.random() < self.prob


def _parse_spec(text: str) -> _FaultSpec:
    parts = text.strip().split(":")
    if len(parts) != 4:
        raise ValueError(
            f"bad fault spec {text!r}: expected point:mode:prob:seed"
        )
    point, mode, prob, seed = parts
    if point not in POINTS:
        raise ValueError(
            f"unknown fault point {point!r}; expected one of {', '.join(POINTS)}"
        )
    delay = _DEFAULT_DELAY
    if mode.startswith("delay@"):
        delay = float(mode.split("@", 1)[1])
        mode = "delay"
    if mode not in MODES:
        raise ValueError(
            f"unknown fault mode {mode!r}; expected raise, delay[@SECONDS],"
            " or corrupt"
        )
    probability = float(prob)
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"fault probability {prob!r} not in [0, 1]")
    return _FaultSpec(
        point=point,
        mode=mode,
        prob=probability,
        seed=int(seed),
        delay_seconds=delay,
    )


_armed = False
_specs: dict[str, list[_FaultSpec]] = {}
_counters: dict[str, int] = {}


def configure(text: "str | None" = None) -> None:
    """(Re)arm from ``text`` (default: the ``REPRO_FAULTS`` env var).

    An empty/absent spec disarms everything and resets the counters —
    tests use ``configure("")`` to return to the no-op state.
    """
    global _armed, _specs, _counters
    if text is None:
        text = os.environ.get("REPRO_FAULTS", "")
    specs: dict[str, list[_FaultSpec]] = {}
    for piece in text.split(","):
        if not piece.strip():
            continue
        spec = _parse_spec(piece)
        specs.setdefault(spec.point, []).append(spec)
    _specs = specs
    _counters = {}
    _armed = bool(specs)


def armed() -> bool:
    return _armed


def counters() -> dict[str, int]:
    """Fired-fault counts per ``point:mode`` since the last configure."""
    return dict(_counters)


def _record(spec: _FaultSpec) -> None:
    key = f"{spec.point}:{spec.mode}"
    _counters[key] = _counters.get(key, 0) + 1


def check(point: str) -> None:
    """Visit ``point``: fire any armed ``raise``/``delay`` specs.

    The no-op fast path is a single boolean test.
    """
    if not _armed:
        return
    for spec in _specs.get(point, ()):
        if spec.mode == "corrupt" or not spec.fires():
            continue
        _record(spec)
        if spec.mode == "delay":
            time.sleep(spec.delay_seconds)
        else:
            raise FaultInjected(
                f"injected fault at {point} "
                f"(prob {spec.prob:g}, seed {spec.seed})"
            )


def corrupt(point: str, data: bytes) -> bytes:
    """Visit ``point`` with ``data`` in flight: armed ``corrupt`` specs
    that fire flip a deterministic byte (and always leave the length
    intact, so corruption is a *content* failure, not a truncation)."""
    if not _armed:
        return data
    for spec in _specs.get(point, ()):
        if spec.mode != "corrupt" or not spec.fires():
            continue
        _record(spec)
        if data:
            with spec.lock:
                index = spec.rng.randrange(len(data))
            mutated = bytearray(data)
            mutated[index] ^= 0xFF
            data = bytes(mutated)
    return data


configure()
