"""Evaluate parsed spec assertions against analyzer results.

Every quantity reduces to an **interval certified to contain the true
value**:

* raw/central moments — the analyzer's interval bounds at the initial
  valuation (central even moments meet with ``[0, inf)``, since the true
  value is nonnegative);
* tail probabilities — ``[0, u]`` where ``u`` is the best applicable
  concentration bound (``[0, 1]`` when no inequality applies);
* attack success — ``[l, 1]`` where ``l`` is the certified success-rate
  lower bound.

One interval-vs-condition rule then yields the three-way verdict for every
assertion form:

* ``pass`` — every value in the interval satisfies the condition,
* ``fail`` — no value in the interval satisfies it,
* ``inconclusive`` — the interval straddles the condition (too wide, or no
  sound bound applies).

This makes the expected one-sidedness fall out for free: a tail assertion
``P(cost >= t) <= p`` passes when the certified upper bound is at most
``p`` and can never pass vacuously, and ``P(cost >= t) >= p`` can only
*fail* (when the upper bound refutes it) — an upper bound cannot certify a
lower one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.results import MomentBoundResult
from repro.policy.ast import (
    Assertion,
    AttackSuccess,
    CentralMoment,
    Comparison,
    Membership,
    RawMoment,
    Spec,
    Stddev,
    TailProbability,
)
from repro.rings.interval import Interval
from repro.tail.bounds import best_lower_tail, best_upper_tail

PASS = "pass"
FAIL = "fail"
INCONCLUSIVE = "inconclusive"


@dataclass
class AssertionOutcome:
    """Verdict plus evidence for one assertion."""

    assertion: Assertion
    verdict: str
    evidence: dict = field(default_factory=dict)
    reason: str = ""

    def to_dict(self) -> dict:
        payload = {
            "assertion": self.assertion.describe(),
            "line": self.assertion.line,
            "verdict": self.verdict,
            "evidence": self.evidence,
        }
        if self.reason:
            payload["reason"] = self.reason
        return payload


@dataclass
class ProgramCheck:
    """All assertion outcomes of one spec against one program."""

    program: str
    spec: str
    outcomes: list[AssertionOutcome] = field(default_factory=list)
    error: str | None = None

    @property
    def verdict(self) -> str:
        if self.error is not None:
            return FAIL
        if any(o.verdict == FAIL for o in self.outcomes):
            return FAIL
        if any(o.verdict == INCONCLUSIVE for o in self.outcomes):
            return INCONCLUSIVE
        return PASS

    @property
    def counts(self) -> dict[str, int]:
        counts = {PASS: 0, FAIL: 0, INCONCLUSIVE: 0}
        for outcome in self.outcomes:
            counts[outcome.verdict] += 1
        return counts


# -- interval-vs-condition verdicts ------------------------------------------


def _compare(interval: Interval, op: str, bound: float) -> str:
    """Three-way verdict of ``value <op> bound`` over all values in the
    interval."""
    lo, hi = interval.lo, interval.hi
    if op == "<=":
        return PASS if hi <= bound else FAIL if lo > bound else INCONCLUSIVE
    if op == "<":
        return PASS if hi < bound else FAIL if lo >= bound else INCONCLUSIVE
    if op == ">=":
        return PASS if lo >= bound else FAIL if hi < bound else INCONCLUSIVE
    if op == ">":
        return PASS if lo > bound else FAIL if hi <= bound else INCONCLUSIVE
    raise ValueError(f"unknown comparison operator {op!r}")


def _member(interval: Interval, lo: float, hi: float) -> str:
    if lo <= interval.lo and interval.hi <= hi:
        return PASS
    if interval.hi < lo or interval.lo > hi:
        return FAIL
    return INCONCLUSIVE


def _verdict(interval: Interval, condition) -> str:
    if isinstance(condition, Membership):
        return _member(interval, condition.lo, condition.hi)
    return _compare(interval, condition.op, condition.bound)


def _round(x: float) -> float:
    """Stabilize report floats: drop sub-1e-12 representation noise."""
    if not math.isfinite(x):
        return x
    return float(f"{x:.12g}")


def _interval_json(interval: Interval) -> list[float]:
    return [_round(interval.lo), _round(interval.hi)]


# -- per-quantity evaluation -------------------------------------------------


class _Evaluator:
    def __init__(
        self,
        result: MomentBoundResult,
        valuation: dict[str, float] | None,
        nonnegative_cost: bool,
    ):
        self.result = result
        self.valuation = valuation
        self.nonnegative_cost = nonnegative_cost
        # A gracefully degraded result's ``raw.degree`` is already the
        # *delivered* degree, so every assertion above it lands here and
        # can only be inconclusive — a degraded analysis never upgrades a
        # missing moment into a pass.
        self.degree = result.raw.degree
        self.degraded = result.degraded

    def _needs_degree(self, order: int) -> "tuple[Interval, dict, str] | None":
        if order > self.degree:
            evidence: dict = {"kind": "unavailable", "required_degree": order}
            if self.degraded is not None:
                evidence["degraded"] = self.degraded
                reason = (
                    f"needs moment degree {order}, but the analysis "
                    f"degraded to {self.degree} of "
                    f"{self.degraded['requested_degree']} requested moments "
                    f"({self.degraded['cause']})"
                )
            else:
                reason = (
                    f"needs moment degree {order}, analysis bounded degree "
                    f"{self.degree} (re-run with moments={order})"
                )
            return Interval(-math.inf, math.inf), evidence, reason
        return None

    def raw_moment(self, q: RawMoment):
        missing = self._needs_degree(q.order)
        if missing:
            return missing
        interval = self.result.raw_interval(q.order, self.valuation)
        return interval, {"kind": "raw_moment", "order": q.order,
                          "interval": _interval_json(interval)}, ""

    def central_moment(self, q: CentralMoment):
        missing = self._needs_degree(q.order)
        if missing:
            return missing
        interval = self.result.central_interval(q.order, self.valuation)
        if q.order % 2 == 0:
            # Even central moments are nonnegative; tighten the bracket.
            interval = Interval(max(interval.lo, 0.0), max(interval.hi, 0.0))
        return interval, {"kind": "central_moment", "order": q.order,
                          "interval": _interval_json(interval)}, ""

    def variance_interval(self) -> "Interval | None":
        if self.degree < 2:
            return None
        interval = self.result.variance(self.valuation)
        return Interval(max(interval.lo, 0.0), max(interval.hi, 0.0))

    def tail(self, q: TailProbability):
        raws = self.result.raw_intervals(self.valuation)
        central = {}
        for order in range(2, self.degree + 1, 2):
            interval = self.result.central_interval(order, self.valuation)
            central[order] = Interval(max(interval.lo, 0.0), max(interval.hi, 0.0))
        if q.direction == ">=":
            bounds = best_upper_tail(
                raws, central, q.threshold, nonnegative_cost=self.nonnegative_cost
            )
        else:
            bounds = best_lower_tail(raws, central, q.threshold)
        entry = bounds.best_entry()
        evidence = {
            "kind": "tail_bound",
            "direction": q.direction,
            "threshold": _round(q.threshold),
            "candidates": [
                {"inequality": name, "order": order, "bound": _round(value)}
                for name, order, value in bounds.entries()
            ],
        }
        if entry is None:
            evidence["bound"] = 1.0
            return (
                Interval(0.0, 1.0),
                evidence,
                "no sound tail bound applicable"
                + ("" if self.nonnegative_cost else " (signed-cost program)"),
            )
        name, order, value = entry
        evidence["inequality"] = name
        evidence["order"] = order
        evidence["bound"] = _round(value)
        return Interval(0.0, value), evidence, ""

    def attack(self, q: AttackSuccess):
        from repro.tail.attack import analyze_attack

        analysis = analyze_attack(bits=q.bits, trials=q.trials)
        rate = analysis.success_rate(q.skip)
        evidence = {
            "kind": "attack_success",
            "bits": q.bits,
            "trials": q.trials,
            "skip": q.skip,
            "lower_bound": _round(rate),
        }
        return Interval(rate, 1.0), evidence, ""


def evaluate_assertion(
    assertion: Assertion,
    result: MomentBoundResult,
    *,
    valuation: dict[str, float] | None = None,
    nonnegative_cost: bool = True,
) -> AssertionOutcome:
    evaluator = _Evaluator(result, valuation, nonnegative_cost)
    condition = assertion.condition
    quantity = condition.quantity

    if isinstance(quantity, Stddev):
        # Compare on the variance scale: stddev ~ b  <=>  variance ~ b^2
        # (monotone for b >= 0; a negative bound decides immediately).
        variance = evaluator.variance_interval()
        if variance is None:
            missing = evaluator._needs_degree(2)
            assert missing is not None
            _, evidence, reason = missing
            return AssertionOutcome(assertion, INCONCLUSIVE, evidence, reason)
        evidence = {
            "kind": "stddev",
            "variance_interval": _interval_json(variance),
            "scale": "variance",
        }
        if isinstance(condition, Membership):
            lo = max(condition.lo, 0.0) ** 2
            hi = condition.hi**2 if condition.hi >= 0 else -1.0
            verdict = FAIL if hi < 0 else _member(variance, lo, hi)
        elif condition.bound < 0:
            verdict = PASS if condition.op in (">=", ">") else FAIL
        else:
            verdict = _compare(variance, condition.op, condition.bound**2)
        reason = "" if verdict != INCONCLUSIVE else "variance interval too wide"
        return AssertionOutcome(assertion, verdict, evidence, reason)

    if isinstance(quantity, RawMoment):
        interval, evidence, reason = evaluator.raw_moment(quantity)
    elif isinstance(quantity, CentralMoment):
        interval, evidence, reason = evaluator.central_moment(quantity)
    elif isinstance(quantity, TailProbability):
        interval, evidence, reason = evaluator.tail(quantity)
    elif isinstance(quantity, AttackSuccess):
        interval, evidence, reason = evaluator.attack(quantity)
    else:
        raise TypeError(f"unknown quantity {quantity!r}")

    verdict = _verdict(interval, condition)
    if verdict != INCONCLUSIVE:
        reason = ""
    elif not reason:
        if isinstance(quantity, TailProbability):
            reason = (
                f"best upper bound {evidence.get('bound')} does not decide the "
                "assertion"
            )
        elif isinstance(quantity, AttackSuccess):
            reason = (
                f"success-rate lower bound {evidence.get('lower_bound')} does not "
                "decide the assertion"
            )
        else:
            reason = "moment interval too wide"
    return AssertionOutcome(assertion, verdict, evidence, reason)


def evaluate_spec(
    spec: Spec,
    result: MomentBoundResult,
    *,
    program: str = "",
    valuation: dict[str, float] | None = None,
    nonnegative_cost: bool = True,
) -> ProgramCheck:
    """Check every assertion of ``spec`` against one analysis result.

    ``nonnegative_cost`` gates Markov-style raw-moment tail bounds — derive
    it from the program with :func:`repro.tail.bounds.costs_nonnegative`.
    """
    check = ProgramCheck(program=program, spec=spec.name)
    for assertion in spec.assertions:
        check.outcomes.append(
            evaluate_assertion(
                assertion,
                result,
                valuation=valuation if valuation is not None else spec.valuation,
                nonnegative_cost=nonnegative_cost,
            )
        )
    return check
