"""Human and machine-readable rendering of policy check results.

The JSON form is **byte-stable**: keys are emitted sorted, floats are
noise-rounded at evaluation time, and no timing or host information is
included — so a committed golden fixture can be compared byte-for-byte
against fresh ``repro check --json`` output.
"""

from __future__ import annotations

import json

from repro.policy.evaluate import FAIL, INCONCLUSIVE, PASS, ProgramCheck

_MARK = {PASS: "PASS", FAIL: "FAIL", INCONCLUSIVE: "????"}


def check_to_dict(check: ProgramCheck) -> dict:
    payload = {
        "program": check.program,
        "spec": check.spec,
        "verdict": check.verdict,
        "counts": check.counts,
        "assertions": [outcome.to_dict() for outcome in check.outcomes],
    }
    if check.error is not None:
        payload["error"] = check.error
    return payload


def render_check(check: ProgramCheck, verbose: bool = True) -> str:
    """Human report for one program: one line per assertion plus a summary."""
    lines = [f"{check.spec} :: {check.program}"]
    if check.error is not None:
        lines.append(f"  ERROR {check.error}")
        return "\n".join(lines)
    for outcome in check.outcomes:
        lines.append(f"  {_MARK[outcome.verdict]}  {outcome.assertion.describe()}")
        if verbose:
            detail = _evidence_line(outcome.evidence)
            if detail:
                lines.append(f"        {detail}")
            if outcome.reason:
                lines.append(f"        {outcome.reason}")
    counts = check.counts
    lines.append(
        f"  => {check.verdict} ({counts[PASS]} pass, {counts[FAIL]} fail, "
        f"{counts[INCONCLUSIVE]} inconclusive)"
    )
    return "\n".join(lines)


def _evidence_line(evidence: dict) -> str:
    kind = evidence.get("kind")
    if kind in ("raw_moment", "central_moment"):
        lo, hi = evidence["interval"]
        return f"moment interval [{lo}, {hi}]"
    if kind == "stddev":
        lo, hi = evidence["variance_interval"]
        return f"variance interval [{lo}, {hi}] (stddev checked as variance)"
    if kind == "tail_bound":
        if "inequality" in evidence:
            return (
                f"{evidence['inequality']} at order {evidence['order']} gives "
                f"bound {evidence['bound']}"
            )
        return "no applicable inequality"
    if kind == "attack_success":
        return f"certified success-rate lower bound {evidence['lower_bound']}"
    if kind == "unavailable":
        return f"needs moment degree {evidence.get('required_degree')}"
    return ""


# -- suites ------------------------------------------------------------------


def suite_to_dict(runs) -> dict:
    """JSON document for a whole suite (list of ``SpecRun``)."""
    specs = []
    totals = {PASS: 0, FAIL: 0, INCONCLUSIVE: 0}
    verdict = PASS
    for run in runs:
        checks = [check_to_dict(check) for check in run.checks]
        for check in run.checks:
            v = check.verdict
            totals[v] += 1
            if v == FAIL:
                verdict = FAIL
            elif v == INCONCLUSIVE and verdict == PASS:
                verdict = INCONCLUSIVE
        specs.append(
            {
                "spec": run.spec.name,
                "path": run.relpath,
                "programs": [check.program for check in run.checks],
                "checks": checks,
            }
        )
    return {"verdict": verdict, "totals": totals, "specs": specs}


def render_suite(runs, verbose: bool = False) -> str:
    lines = []
    totals = {PASS: 0, FAIL: 0, INCONCLUSIVE: 0}
    for run in runs:
        for check in run.checks:
            totals[check.verdict] += 1
            if verbose or check.verdict != PASS:
                lines.append(render_check(check, verbose=True))
            else:
                counts = check.counts
                lines.append(
                    f"PASS  {run.spec.name} :: {check.program} "
                    f"({counts[PASS]} assertions)"
                )
    lines.append(
        f"suite: {totals[PASS]} pass, {totals[FAIL]} fail, "
        f"{totals[INCONCLUSIVE]} inconclusive"
    )
    return "\n".join(lines)


def to_json(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
