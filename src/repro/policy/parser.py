"""Hand-rolled tokenizer and recursive-descent parser for spec files.

Grammar (one assertion per line; ``#`` starts a comment; ``@`` starts a
directive):

    assertion  = quantity condition
    condition  = relop number | "in" "[" number "," number "]"
    quantity   = "P" "(" cost relop number ")"
               | "E" "[" moment "]"
               | ("mean" | "variance" | "stddev") "(" cost ")"
               | "attack_success" "(" [ kwargs ] ")"
    moment     = cost [ "^" integer ]
               | "(" cost "-" "E" "[" cost "]" ")" "^" integer
    cost       = "cost" | "C"
    relop      = "<=" | "<" | ">=" | ">"
    kwargs     = ident "=" number { "," ident "=" number }
    number     = [ "-" ] digits [ "." digits ] [ ("e"|"E") [sign] digits ]

Directives:

    @name <free text>            spec display name
    @programs p1, p2, glob-*     registry names / fnmatch globs
    @options moments=4 degree=2 cap=3
    @at x=10, y=0                initial valuation override

Errors carry the 1-based line and column of the offending token.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.policy.ast import (
    Assertion,
    AttackSuccess,
    CentralMoment,
    Comparison,
    Membership,
    RawMoment,
    Spec,
    Stddev,
    TailProbability,
)


class ParseError(ValueError):
    """A spec syntax error with its source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        where = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{where}")


# -- tokenizer ---------------------------------------------------------------

_NUMBER = re.compile(r"(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?")
_IDENT = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_OPS = ("<=", ">=", "<", ">", "(", ")", "[", "]", ",", "^", "=", "-")


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "ident" | "op" | "end"
    text: str
    column: int


def tokenize(text: str, line: int = 1) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        ch = text[pos]
        if ch in " \t":
            pos += 1
            continue
        if ch == "#":
            break
        m = _NUMBER.match(text, pos)
        if m:
            tokens.append(Token("number", m.group(), pos + 1))
            pos = m.end()
            continue
        m = _IDENT.match(text, pos)
        if m:
            tokens.append(Token("ident", m.group(), pos + 1))
            pos = m.end()
            continue
        for op in _OPS:
            if text.startswith(op, pos):
                tokens.append(Token("op", op, pos + 1))
                pos += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, pos + 1)
    tokens.append(Token("end", "", len(text) + 1))
    return tokens


# -- recursive descent -------------------------------------------------------


class _Parser:
    def __init__(self, text: str, line: int):
        self.text = text
        self.line = line
        self.tokens = tokenize(text, line)
        self.pos = 0

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def fail(self, message: str) -> "ParseError":
        return ParseError(message, self.line, self.cur.column)

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "end":
            self.pos += 1
        return tok

    def expect_op(self, op: str) -> Token:
        if self.cur.kind != "op" or self.cur.text != op:
            raise self.fail(f"expected {op!r}, found {self.cur.text or 'end of line'!r}")
        return self.advance()

    def accept_op(self, op: str) -> bool:
        if self.cur.kind == "op" and self.cur.text == op:
            self.advance()
            return True
        return False

    def number(self) -> float:
        negative = self.accept_op("-")
        if self.cur.kind != "number":
            raise self.fail(f"expected a number, found {self.cur.text or 'end of line'!r}")
        value = float(self.advance().text)
        return -value if negative else value

    def integer(self) -> int:
        column = self.cur.column
        value = self.number()
        if value != int(value) or value < 1:
            raise ParseError(
                f"expected a positive integer exponent, found {value}",
                self.line,
                column,
            )
        return int(value)

    def relop(self) -> str:
        if self.cur.kind == "op" and self.cur.text in ("<=", "<", ">=", ">"):
            return self.advance().text
        raise self.fail(
            f"expected a comparison (<=, <, >=, >), found {self.cur.text or 'end of line'!r}"
        )

    def cost(self) -> None:
        if self.cur.kind == "ident" and self.cur.text in ("cost", "C"):
            self.advance()
            return
        raise self.fail(
            f"expected the cost accumulator ('cost' or 'C'), found {self.cur.text or 'end of line'!r}"
        )

    # quantity = P(...) | E[...] | mean/variance/stddev(cost) | attack_success(...)
    def quantity(self):
        tok = self.cur
        if tok.kind != "ident":
            raise self.fail(
                f"expected a quantity (P, E, mean, variance, stddev, attack_success), "
                f"found {tok.text or 'end of line'!r}"
            )
        name = self.advance().text
        if name == "P":
            return self.tail_probability()
        if name == "E":
            return self.expectation()
        if name in ("mean", "variance", "stddev"):
            self.expect_op("(")
            self.cost()
            self.expect_op(")")
            if name == "mean":
                return RawMoment(1)
            if name == "variance":
                return CentralMoment(2)
            return Stddev()
        if name == "attack_success":
            return self.attack_success()
        raise ParseError(
            f"unknown quantity {name!r} (expected P, E, mean, variance, stddev, "
            "attack_success)",
            self.line,
            tok.column,
        )

    def tail_probability(self) -> TailProbability:
        self.expect_op("(")
        self.cost()
        op = self.relop()
        threshold = self.number()
        self.expect_op(")")
        # Strict tails normalize to the closed form the inequalities bound:
        # P[X > t] <= P[X >= t] and P[X < t] <= P[X <= t].
        direction = ">=" if op in (">=", ">") else "<="
        return TailProbability(direction, threshold)

    def expectation(self):
        self.expect_op("[")
        if self.accept_op("("):
            # E[(cost - E[cost])^k]
            self.cost()
            self.expect_op("-")
            if self.cur.kind != "ident" or self.cur.text != "E":
                raise self.fail("expected E[cost] inside the central-moment form")
            self.advance()
            self.expect_op("[")
            self.cost()
            self.expect_op("]")
            self.expect_op(")")
            self.expect_op("^")
            order = self.integer()
            self.expect_op("]")
            return CentralMoment(order)
        self.cost()
        order = 1
        if self.accept_op("^"):
            order = self.integer()
        self.expect_op("]")
        return RawMoment(order)

    def attack_success(self) -> AttackSuccess:
        self.expect_op("(")
        kwargs: dict[str, float] = {}
        if not self.accept_op(")"):
            while True:
                if self.cur.kind != "ident":
                    raise self.fail("expected a keyword argument name")
                key = self.advance().text
                if key not in ("bits", "trials", "skip"):
                    raise ParseError(
                        f"unknown attack_success argument {key!r} "
                        "(expected bits, trials, skip)",
                        self.line,
                        self.cur.column,
                    )
                self.expect_op("=")
                kwargs[key] = self.number()
                if self.accept_op(")"):
                    break
                self.expect_op(",")
        return AttackSuccess(
            bits=int(kwargs.get("bits", 32)),
            trials=int(kwargs.get("trials", 10_000)),
            skip=int(kwargs.get("skip", 0)),
        )

    def condition(self):
        quantity = self.quantity()
        if self.cur.kind == "ident" and self.cur.text == "in":
            self.advance()
            self.expect_op("[")
            lo = self.number()
            self.expect_op(",")
            hi = self.number()
            self.expect_op("]")
            if lo > hi:
                raise ParseError(
                    f"empty interval [{lo}, {hi}]", self.line, self.cur.column
                )
            return Membership(quantity, lo, hi)
        op = self.relop()
        bound = self.number()
        return Comparison(quantity, op, bound)

    def assertion(self) -> Assertion:
        condition = self.condition()
        if self.cur.kind != "end":
            raise self.fail(f"trailing input {self.cur.text!r}")
        return Assertion(condition, self.text.strip(), self.line)


def parse_assertion(text: str, line: int = 1) -> Assertion:
    """Parse a single assertion line."""
    return _Parser(text, line).assertion()


# -- directives and whole files ----------------------------------------------


def _parse_kv_pairs(body: str, line: int, directive: str) -> dict[str, float]:
    pairs: dict[str, float] = {}
    for chunk in re.split(r"[,\s]+", body.strip()):
        if not chunk:
            continue
        if "=" not in chunk:
            raise ParseError(
                f"{directive} expects key=value pairs, found {chunk!r}", line, 1
            )
        key, _, value = chunk.partition("=")
        try:
            pairs[key.strip()] = float(value)
        except ValueError:
            raise ParseError(
                f"{directive}: bad number {value!r} for {key.strip()!r}", line, 1
            ) from None
    return pairs


_OPTION_NAMES = ("moments", "degree", "cap")


def parse_spec(text: str, path: str | None = None) -> Spec:
    """Parse a whole spec file (assertions + directives)."""
    spec = Spec(path=path)
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("@"):
            directive, _, body = line.partition(" ")
            if directive == "@name":
                spec.name = body.strip()
            elif directive == "@programs":
                names = [n.strip() for n in body.split(",") if n.strip()]
                if not names:
                    raise ParseError("@programs needs at least one name", lineno, 1)
                spec.programs = spec.programs + tuple(names)
            elif directive == "@options":
                for key, value in _parse_kv_pairs(body, lineno, "@options").items():
                    if key not in _OPTION_NAMES:
                        raise ParseError(
                            f"unknown option {key!r} (expected one of "
                            f"{', '.join(_OPTION_NAMES)})",
                            lineno,
                            1,
                        )
                    if value != int(value) or value < 1:
                        raise ParseError(
                            f"@options {key} must be a positive integer", lineno, 1
                        )
                    spec.options[key] = int(value)
            elif directive == "@at":
                valuation = _parse_kv_pairs(body, lineno, "@at")
                spec.valuation = {**(spec.valuation or {}), **valuation}
            else:
                raise ParseError(
                    f"unknown directive {directive!r} (expected @name, @programs, "
                    "@options, @at)",
                    lineno,
                    1,
                )
            continue
        spec.assertions.append(parse_assertion(line, lineno))
    if not spec.assertions:
        raise ParseError("spec has no assertions", 0, 0)
    if not spec.name:
        spec.name = path or "<spec>"
    return spec
