"""Typed condition AST for the tail-assertion policy language.

A *spec* is a list of assertions plus optional directives.  Each assertion
compares a **quantity** — something the analyzer can bracket or bound —
against a scalar or an interval:

* :class:`RawMoment` — ``E[cost^k]`` (``mean(cost)`` is order 1),
* :class:`CentralMoment` — ``E[(cost - E[cost])^k]`` (``variance(cost)``
  is order 2),
* :class:`Stddev` — ``stddev(cost)``, compared on the variance scale,
* :class:`TailProbability` — ``P(cost >= t)`` / ``P(cost <= t)``, bounded
  through the concentration inequalities of :mod:`repro.tail.bounds`,
* :class:`AttackSuccess` — the Appendix-I timing-attack success-rate lower
  bound from :mod:`repro.tail.attack`.

Every quantity evaluates to an *interval* known to contain the true value
(tail probabilities to ``[0, upper-bound]``, attack success to
``[lower-bound, 1]``), so a single interval-vs-condition rule yields the
three-way verdict for all assertion forms — see
:mod:`repro.policy.evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RawMoment:
    """``E[cost^k]``; order 1 is the plain expected cost."""

    order: int

    def describe(self) -> str:
        return "E[cost]" if self.order == 1 else f"E[cost^{self.order}]"


@dataclass(frozen=True)
class CentralMoment:
    """``E[(cost - E[cost])^k]``; order 2 is the variance."""

    order: int

    def describe(self) -> str:
        if self.order == 2:
            return "variance(cost)"
        return f"E[(cost - E[cost])^{self.order}]"


@dataclass(frozen=True)
class Stddev:
    """``stddev(cost)`` — checked on the variance scale by squaring."""

    def describe(self) -> str:
        return "stddev(cost)"


@dataclass(frozen=True)
class TailProbability:
    """``P(cost >= t)`` (direction ``">="``) or ``P(cost <= t)`` (``"<="``).

    Strict inner comparisons normalize to the closed form —
    ``P[X > t] <= P[X >= t]``, so the certified upper bound still holds.
    """

    direction: str  # ">=" (upper tail) or "<=" (lower tail)
    threshold: float

    def describe(self) -> str:
        return f"P(cost {self.direction} {_fmt(self.threshold)})"


@dataclass(frozen=True)
class AttackSuccess:
    """Timing-attack success-rate lower bound (Appendix I, Fig. 16)."""

    bits: int = 32
    trials: int = 10_000
    skip: int = 0

    def describe(self) -> str:
        parts = [f"bits={self.bits}", f"trials={self.trials}"]
        if self.skip:
            parts.append(f"skip={self.skip}")
        return f"attack_success({', '.join(parts)})"


Quantity = "RawMoment | CentralMoment | Stddev | TailProbability | AttackSuccess"


@dataclass(frozen=True)
class Comparison:
    """``quantity <op> bound`` with ``op`` one of ``<= < >= >``."""

    quantity: object
    op: str
    bound: float

    def describe(self) -> str:
        return f"{self.quantity.describe()} {self.op} {_fmt(self.bound)}"


@dataclass(frozen=True)
class Membership:
    """``quantity in [lo, hi]``."""

    quantity: object
    lo: float
    hi: float

    def describe(self) -> str:
        return f"{self.quantity.describe()} in [{_fmt(self.lo)}, {_fmt(self.hi)}]"


@dataclass(frozen=True)
class Assertion:
    """One spec line: the parsed condition plus its source location."""

    condition: "Comparison | Membership"
    text: str
    line: int

    def describe(self) -> str:
        return self.condition.describe()


@dataclass
class Spec:
    """A parsed spec file.

    ``programs`` are registry names or ``fnmatch`` globs from the
    ``@programs`` directive (empty when the program comes from elsewhere,
    e.g. a CLI path argument).  ``options`` are analyzer knob overrides
    from ``@options`` (``moments``, ``degree``, ``cap``), ``valuation`` is
    the ``@at`` initial-valuation override.
    """

    name: str = ""
    programs: tuple[str, ...] = ()
    options: dict[str, int] = field(default_factory=dict)
    valuation: dict[str, float] | None = None
    assertions: list[Assertion] = field(default_factory=list)
    path: str | None = None

    def min_moment_degree(self) -> int:
        """The analyzer ``moment_degree`` the spec calls for.

        An explicit ``@options moments=k`` pins the degree exactly
        (assertions the pinned analysis cannot decide come back
        ``inconclusive`` with a re-run hint).  Otherwise it is the smallest
        degree that can decide every assertion: the highest moment order
        mentioned, with tail and stddev assertions wanting at least a
        variance (attack_success uses the closed-form paper bounds and
        needs none).
        """
        if "moments" in self.options:
            return self.options["moments"]
        need = 1
        for assertion in self.assertions:
            q = assertion.condition.quantity
            if isinstance(q, (RawMoment, CentralMoment)):
                need = max(need, q.order)
            elif isinstance(q, (Stddev, TailProbability)):
                need = max(need, 2)
        return need


def _fmt(x: float) -> str:
    """Render a number the way the grammar accepts it back."""
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return repr(x)
