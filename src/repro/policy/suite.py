"""Suite mode: validate spec files against whole program sets.

A suite is a directory of ``*.spec`` files.  Each spec names its target
programs with the ``@programs`` directive — registry names or ``fnmatch``
globs (``wang-*``) resolved against :mod:`repro.programs.registry`.  All
resolved analyses fan out through the batch executor
(:func:`repro.service.executor.run_batch`), sharing the artifact cache, and
each spec is then evaluated against the results it asked for.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.analysis.pipeline import AnalysisOptions
from repro.policy.ast import Spec
from repro.policy.evaluate import FAIL, INCONCLUSIVE, ProgramCheck, evaluate_spec
from repro.policy.parser import parse_spec
from repro.tail.bounds import costs_nonnegative


@dataclass
class SpecRun:
    """One spec plus the per-program checks it produced."""

    spec: Spec
    relpath: str
    checks: list[ProgramCheck] = field(default_factory=list)


@dataclass
class SuiteResult:
    runs: list[SpecRun]

    @property
    def failed(self) -> bool:
        return any(c.verdict == FAIL for run in self.runs for c in run.checks)

    @property
    def inconclusive(self) -> bool:
        return any(
            c.verdict == INCONCLUSIVE for run in self.runs for c in run.checks
        )


def load_suite(directory: str | os.PathLike) -> list[tuple[str, Spec]]:
    """Parse every ``*.spec`` under ``directory`` (sorted, recursive)."""
    root = Path(directory)
    paths = sorted(root.rglob("*.spec"))
    if not paths:
        raise FileNotFoundError(f"no .spec files under {root}")
    suite = []
    for path in paths:
        spec = parse_spec(path.read_text(), path=str(path))
        if not spec.programs:
            raise ValueError(f"{path}: suite specs need a @programs directive")
        suite.append((str(path.relative_to(root)), spec))
    return suite


def resolve_programs(spec: Spec) -> list[str]:
    """Registry names matching the spec's ``@programs`` entries (order of
    first mention, each name once)."""
    from repro.programs.registry import all_benchmarks

    names = list(all_benchmarks())
    resolved: list[str] = []
    for pattern in spec.programs:
        matches = (
            [pattern]
            if pattern in names
            else [name for name in names if fnmatch(name, pattern)]
        )
        if not matches:
            raise ValueError(
                f"@programs entry {pattern!r} matches no registry program"
            )
        for name in matches:
            if name not in resolved:
                resolved.append(name)
    return resolved


def options_for(spec: Spec, bench) -> AnalysisOptions:
    """Analyzer options for one spec/benchmark pair: the benchmark's
    registered metadata, overridden by ``@options``, with the moment degree
    floored at what the assertions need."""
    moments = max(spec.min_moment_degree(), 0)
    if "moments" not in spec.options:
        moments = max(moments, bench.moment_degree)
    valuation = spec.valuation if spec.valuation is not None else bench.valuation
    return AnalysisOptions(
        moment_degree=moments,
        template_degree=spec.options.get("degree", bench.template_degree),
        degree_cap=spec.options.get("cap", bench.degree_cap),
        objective_valuations=(dict(valuation),) + tuple(
            dict(v) for v in bench.extra_valuations
        ),
    )


def run_suite(
    suite: list[tuple[str, Spec]],
    *,
    jobs: int | None = None,
    executor: str = "thread",
    cache=None,
) -> SuiteResult:
    """Analyze every (spec, program) pair and evaluate all assertions.

    Analyses are deduplicated per ``(program, options)`` and fanned out in
    one :func:`run_batch` call; an analysis failure surfaces as a failed
    :class:`ProgramCheck` (``error`` set), never an exception.
    """
    from repro.programs.registry import get
    from repro.service.executor import run_batch

    # One workload entry per distinct (program, options); several specs can
    # share an analysis.
    workload: dict[str, tuple] = {}
    plan: list[tuple[str, Spec, list[tuple[str, str]]]] = []  # relpath, spec, [(prog, key)]
    for relpath, spec in suite:
        entries = []
        for name in resolve_programs(spec):
            bench = get(name)
            options = options_for(spec, bench)
            key = f"{name}@{options.result_key([dict(bench.valuation)])!r}"
            if key not in workload:
                workload[key] = (bench.parse(), options)
            entries.append((name, key))
        plan.append((relpath, spec, entries))

    report = run_batch(
        {key: pair for key, pair in workload.items()},
        jobs=jobs,
        executor=executor,
        cache=cache,
    )
    items = {item.name: item for item in report.items}

    runs: list[SpecRun] = []
    for relpath, spec, entries in plan:
        run = SpecRun(spec=spec, relpath=relpath)
        for name, key in entries:
            item = items[key]
            if not item.ok or item.result is None:
                run.checks.append(
                    ProgramCheck(
                        program=name,
                        spec=spec.name,
                        error=item.error or "analysis produced no result",
                    )
                )
                continue
            program, _ = workload[key]
            run.checks.append(
                evaluate_spec(
                    spec,
                    item.result,
                    program=name,
                    nonnegative_cost=costs_nonnegative(program),
                )
            )
        runs.append(run)
    return SuiteResult(runs)
