"""Tail-assertion policy language over moment bounds.

A small declarative spec language for the quantities the analyzer can
certify — moment intervals and concentration tail bounds:

    @name rdwalk sanity
    @programs rdwalk
    E[cost] in [19, 25]
    variance(cost) <= 249
    P(cost >= 100) <= 0.05

Specs are parsed (:mod:`repro.policy.parser`) into a typed condition AST
(:mod:`repro.policy.ast`), evaluated against analyzer results
(:mod:`repro.policy.evaluate`) with a three-way verdict model —
``pass`` / ``fail`` / ``inconclusive`` — and rendered as human or
byte-stable JSON reports (:mod:`repro.policy.report`).  Suite mode
(:mod:`repro.policy.suite`) fans a directory of specs over registry
program sets through the batch executor.
"""

from repro.policy.ast import (
    Assertion,
    AttackSuccess,
    CentralMoment,
    Comparison,
    Membership,
    RawMoment,
    Spec,
    Stddev,
    TailProbability,
)
from repro.policy.evaluate import AssertionOutcome, ProgramCheck, evaluate_spec
from repro.policy.parser import ParseError, parse_assertion, parse_spec
from repro.policy.report import check_to_dict, render_check, render_suite, suite_to_dict
from repro.policy.suite import SpecRun, SuiteResult, load_suite, run_suite

__all__ = [
    "Assertion",
    "AssertionOutcome",
    "AttackSuccess",
    "CentralMoment",
    "Comparison",
    "Membership",
    "ParseError",
    "ProgramCheck",
    "RawMoment",
    "Spec",
    "SpecRun",
    "Stddev",
    "SuiteResult",
    "TailProbability",
    "check_to_dict",
    "evaluate_spec",
    "load_suite",
    "parse_assertion",
    "parse_spec",
    "render_check",
    "render_suite",
    "run_suite",
    "suite_to_dict",
]
