"""Monotonic deadline tokens bounding analysis wall-clock.

Nothing in the analyzer is allowed to block forever: a degenerate Handelman
template can put an LP stage objective on a near-unbounded ray that wedges
the solver indefinitely (the ``rdwalk_chain(3)``@m=4 pathology), and at
fuzzing scale such programs *will* occur.  This module is the one shared
clock every layer consults:

* :class:`Deadline` — a token anchored at ``time.monotonic()`` with a
  wall-clock budget.  ``remaining()`` is clamped at zero, ``check(stage)``
  raises :class:`AnalysisTimeout` once the budget is spent, and every check
  records a per-stage timing mark so the raised timeout says *where* the
  budget went.
* :class:`AnalysisTimeout` — the typed expiry error.  Deliberately **not**
  an :class:`~repro.lp.core.LPError` subclass: the template-restart ladder
  and the reduced solver's retry loops catch ``LPError`` to try again, and
  retrying with an exhausted budget is exactly what a deadline must
  prevent.
* :func:`deadline_scope` / :func:`current_deadline` — a context-variable
  scope.  The pipeline arms the token once in ``analyze`` and every layer
  below (backends, the reduce block loop, the parallel pool's parent-side
  wait, vectorized MC supersteps) reads it ambiently, so no solve signature
  carries a deadline parameter.

Deadlines are runtime-only: they never enter cache keys, and an analysis
run with a generous deadline produces byte-identical bounds to one with no
deadline at all (the token is only ever *read*, never folded into results).

Worker processes do not inherit the parent's context variables — block
tasks crossing the process boundary carry a numeric remaining-budget
snapshot instead (see :class:`repro.lp.parallel.BlockTask`), and the
parent-side pool wait is the authoritative hang safety net.
"""

from __future__ import annotations

import contextlib
import contextvars
import time

__all__ = [
    "AnalysisTimeout",
    "Deadline",
    "current_deadline",
    "deadline_scope",
]


class AnalysisTimeout(Exception):
    """An analysis ran past its :class:`Deadline`.

    Carries the ``stage`` that tripped the check, the token's elapsed
    ``seconds``, and the per-stage ``timings`` recorded up to that point
    (an ordered ``{stage: seconds}`` mapping).  ``lex_completed`` is filled
    in by the lexicographic solver: the number of moment stages that were
    fully solved before the budget ran out, which seeds the graceful-
    degradation ladder's first fallback degree.
    """

    def __init__(
        self,
        stage: str,
        seconds: float,
        timings: "dict[str, float] | None" = None,
        lex_completed: int = 0,
    ) -> None:
        super().__init__(
            f"analysis deadline exceeded after {seconds:.3f}s (at stage "
            f"{stage!r})"
        )
        self.stage = stage
        self.seconds = seconds
        self.timings = dict(timings or {})
        self.lex_completed = lex_completed


class Deadline:
    """A monotonic wall-clock budget shared by every pipeline layer."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError("deadline must be a positive number of seconds")
        self.seconds = float(seconds)
        self._start = time.monotonic()
        self._last_mark = self._start
        #: Ordered per-stage timings: seconds spent between consecutive
        #: ``check``/``mark`` calls, attributed to the stage *reached*.
        self.timings: dict[str, float] = {}

    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def remaining(self) -> float:
        """Budget left, clamped at zero (never negative)."""
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        return self.elapsed() >= self.seconds

    def mark(self, stage: str) -> None:
        """Attribute the time since the previous mark to ``stage``."""
        now = time.monotonic()
        self.timings[stage] = self.timings.get(stage, 0.0) + (now - self._last_mark)
        self._last_mark = now

    def check(self, stage: str) -> None:
        """Record a stage boundary; raise :class:`AnalysisTimeout` if spent."""
        self.mark(stage)
        if self.expired():
            raise AnalysisTimeout(stage, self.elapsed(), self.timings)


_current: contextvars.ContextVar["Deadline | None"] = contextvars.ContextVar(
    "repro_deadline", default=None
)


def current_deadline() -> "Deadline | None":
    """The ambient deadline token, or ``None`` when no budget is armed."""
    return _current.get()


@contextlib.contextmanager
def deadline_scope(deadline: "Deadline | None"):
    """Make ``deadline`` the ambient token for the dynamic extent.

    ``None`` explicitly clears any outer scope (used by the degradation
    ladder to give each fallback rung a fresh budget).
    """
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)
