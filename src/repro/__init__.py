"""repro — Central moment analysis for cost accumulators in probabilistic programs.

A from-scratch Python reproduction of Wang, Hoffmann, Reps (PLDI 2021):
automatic derivation of symbolic interval bounds on raw and central moments
of cost accumulators in probabilistic programs, with tail-bound analysis on
top.

Quickstart::

    from repro import parse_program, analyze, AnalysisOptions

    program = parse_program('''
        func rdwalk() pre(x < d + 2) begin
          if x < d then
            t ~ uniform(-1, 2);
            x := x + t;
            call rdwalk;
            tick(1)
          fi
        end

        func main() pre(d > 0) begin
          x := 0;
          call rdwalk
        end
    ''')
    result = analyze(program, AnalysisOptions(moment_degree=2))
    print(result.upper_str(1))   # ~ 2*d + 4
    print(result.variance({"d": 10, "x": 0, "t": 0}))
"""

from repro.analysis.engine import (
    AnalysisError,
    AnalysisOptions,
    AnalysisPipeline,
    analyze,
    analyze_many,
    analyze_upper_raw,
)
from repro.analysis.results import MomentBoundResult
from repro.interp.mc import (
    CostStatistics,
    estimate_cost_statistics,
    simulate_costs,
    statistics_from_costs,
)
from repro.interp.vectorized import BatchRunResult, VectorizedMachine
from repro.lang.parser import parse_program
from repro.lp.problem import LPError, LPInfeasibleError
from repro.rings.interval import Interval
from repro.rings.moment import MomentVector, raw_to_central, variance_interval
from repro.programs.fuzz import FuzzCase, FuzzConfig, generate_case, generate_corpus
from repro.service import ArtifactCache, BatchReport, run_batch
from repro.soundness.checker import SoundnessReport, check_soundness
from repro.soundness.differential import (
    DifferentialConfig,
    DifferentialReport,
    check_case,
    run_differential,
)
from repro.tail.bounds import (
    best_upper_tail,
    cantelli_upper_tail,
    chebyshev_tail,
    markov_tail,
    tail_curve,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "AnalysisOptions",
    "AnalysisPipeline",
    "ArtifactCache",
    "BatchReport",
    "BatchRunResult",
    "CostStatistics",
    "DifferentialConfig",
    "DifferentialReport",
    "FuzzCase",
    "FuzzConfig",
    "Interval",
    "LPError",
    "LPInfeasibleError",
    "MomentBoundResult",
    "MomentVector",
    "SoundnessReport",
    "VectorizedMachine",
    "analyze",
    "analyze_many",
    "analyze_upper_raw",
    "best_upper_tail",
    "cantelli_upper_tail",
    "chebyshev_tail",
    "check_case",
    "check_soundness",
    "estimate_cost_statistics",
    "generate_case",
    "generate_corpus",
    "markov_tail",
    "parse_program",
    "raw_to_central",
    "run_batch",
    "run_differential",
    "simulate_costs",
    "statistics_from_costs",
    "tail_curve",
    "variance_interval",
]
