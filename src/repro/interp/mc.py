"""Monte-Carlo estimation of cost statistics.

Used to cross-validate inferred bounds (every inferred interval must bracket
the empirical moment up to sampling error — see
:mod:`repro.soundness.differential` for the systematic harness) and to
regenerate the density plots of Fig. 11.

Two interchangeable engines produce the samples:

* ``engine="machine"`` — the scalar small-step interpreter
  (:class:`~repro.interp.machine.Machine`), one trajectory at a time;
* ``engine="vectorized"`` — the batched NumPy engine
  (:class:`~repro.interp.vectorized.VectorizedMachine`), which advances all
  trajectories simultaneously and is ~20-30x faster on the benchmark suite
  (``benchmarks/bench_mc.py``).

Both draw from the same trajectory distribution, but they consume the seeded
random stream in different orders, so the *individual* samples differ for a
given seed.  The scalar engine stays the default to keep long-standing
seeded tests byte-stable; large-``n`` callers (the differential fuzz
harness, the Fig. 9/11 benchmarks) opt into ``engine="vectorized"``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.interp.machine import Machine, NondetPolicy, left_policy, random_policy
from repro.interp.vectorized import simulate_costs_vectorized
from repro.lang.ast import Program

ENGINES = ("machine", "vectorized")

#: Names accepted for ``nondet_policy`` by both engines, mapped to the
#: scalar-machine callables they mean.
_NAMED_POLICIES: dict[str, NondetPolicy] = {
    "random": random_policy,
    "left": left_policy,
    "right": lambda stmt, valuation, rng: False,
}


@dataclass
class CostStatistics:
    """Empirical raw/central moments of the accumulated cost.

    Carries the sample array it was estimated from (``costs``), so
    sample-dependent queries — tail probabilities, quantiles, histograms —
    are methods on the statistics object rather than functions that need the
    samples passed back in.
    """

    samples: int
    mean: float
    raw: list[float]
    central: list[float]
    skewness: float
    kurtosis: float
    timeouts: int
    #: The terminating-run cost samples the statistics were computed from.
    costs: np.ndarray = field(default_factory=lambda: np.empty(0), repr=False)

    def raw_moment(self, k: int) -> float:
        return self.raw[k]

    def central_moment(self, k: int) -> float:
        return self.central[k]

    def tail_probability(self, threshold: float) -> float:
        """Empirical ``P[C >= threshold]`` over the stored samples."""
        if self.costs.size == 0:
            raise ValueError("no samples stored; re-estimate with n > 0")
        return float(np.mean(self.costs >= threshold))

    def quantile(self, q: float) -> float:
        """Empirical ``q``-quantile of the stored cost samples."""
        if self.costs.size == 0:
            raise ValueError("no samples stored; re-estimate with n > 0")
        return float(np.quantile(self.costs, q))

    def moment_stderr(self, k: int) -> float:
        """CLT standard error of the empirical k-th raw moment.

        ``sd(C^k) / sqrt(n)`` — the scale of the sampling-error margin the
        differential soundness harness allows before calling a bracketing
        failure a violation.
        """
        if self.costs.size == 0:
            raise ValueError("no samples stored; re-estimate with n > 0")
        return float(np.std(self.costs**k) / math.sqrt(self.costs.size))


def _resolve_policy(policy: "NondetPolicy | str", engine: str):
    """Return the policy in the form the chosen engine wants."""
    if engine == "vectorized":
        if isinstance(policy, str):
            return policy
        for name, fn in _NAMED_POLICIES.items():
            if policy is fn:
                return name
        raise TypeError(
            "engine='vectorized' resolves nondeterminism batch-wide; pass "
            f"one of {tuple(_NAMED_POLICIES)} instead of {policy!r}"
        )
    if isinstance(policy, str):
        try:
            return _NAMED_POLICIES[policy]
        except KeyError:
            raise ValueError(
                f"unknown nondet policy {policy!r}; "
                f"expected one of {tuple(_NAMED_POLICIES)}"
            ) from None
    return policy


def simulate_costs(
    program: Program,
    n: int,
    seed: int = 0,
    initial: dict[str, float] | None = None,
    max_steps: int = 1_000_000,
    nondet_policy: "NondetPolicy | str" = random_policy,
    engine: str = "machine",
) -> np.ndarray:
    """Run ``program`` ``n`` times and return the accumulated costs.

    Non-terminating runs (hitting ``max_steps``) are dropped with a count
    kept by :func:`estimate_cost_statistics`; for the almost-surely
    terminating benchmark suite they are vanishingly rare.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    policy = _resolve_policy(nondet_policy, engine)
    if engine == "vectorized":
        return simulate_costs_vectorized(
            program, n, seed=seed, initial=initial, max_steps=max_steps,
            nondet_policy=policy,
        )
    machine = Machine(program, policy)
    rng = np.random.default_rng(seed)
    costs = []
    for _ in range(n):
        result = machine.run(rng, initial=initial, max_steps=max_steps)
        if result.terminated:
            costs.append(result.cost)
    return np.asarray(costs)


def statistics_from_costs(
    costs: np.ndarray, degree: int = 4, timeouts: int = 0
) -> CostStatistics:
    """Summarize an existing cost-sample array into :class:`CostStatistics`."""
    costs = np.asarray(costs, dtype=float)
    if len(costs) == 0:
        raise RuntimeError("no terminating runs observed")
    mean = float(np.mean(costs))
    raw = [float(np.mean(costs**k)) for k in range(degree + 1)]
    central = [1.0, 0.0] + [
        float(np.mean((costs - mean) ** k)) for k in range(2, degree + 1)
    ]
    var = central[2] if degree >= 2 else float("nan")
    skewness = central[3] / var**1.5 if degree >= 3 and var > 0 else math.nan
    kurtosis = central[4] / var**2 if degree >= 4 and var > 0 else math.nan
    return CostStatistics(
        samples=len(costs),
        mean=mean,
        raw=raw,
        central=central,
        skewness=skewness,
        kurtosis=kurtosis,
        timeouts=timeouts,
        costs=costs,
    )


def estimate_cost_statistics(
    program: Program,
    n: int = 10_000,
    seed: int = 0,
    degree: int = 4,
    initial: dict[str, float] | None = None,
    max_steps: int = 1_000_000,
    nondet_policy: "NondetPolicy | str" = random_policy,
    engine: str = "machine",
) -> CostStatistics:
    costs = simulate_costs(
        program, n, seed=seed, initial=initial, max_steps=max_steps,
        nondet_policy=nondet_policy, engine=engine,
    )
    return statistics_from_costs(costs, degree=degree, timeouts=n - len(costs))


def density_histogram(
    costs: np.ndarray, bins: int = 60
) -> tuple[np.ndarray, np.ndarray]:
    """Normalized histogram (midpoints, densities) — Fig. 11's estimates."""
    densities, edges = np.histogram(costs, bins=bins, density=True)
    midpoints = 0.5 * (edges[:-1] + edges[1:])
    return midpoints, densities
