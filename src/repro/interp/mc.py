"""Monte-Carlo estimation of cost statistics.

Used to cross-validate inferred bounds (every inferred interval must bracket
the empirical moment up to sampling error) and to regenerate the density
plots of Fig. 11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.interp.machine import Machine, NondetPolicy, random_policy
from repro.lang.ast import Program


@dataclass
class CostStatistics:
    """Empirical raw/central moments of the accumulated cost."""

    samples: int
    mean: float
    raw: list[float]
    central: list[float]
    skewness: float
    kurtosis: float
    timeouts: int

    def raw_moment(self, k: int) -> float:
        return self.raw[k]

    def central_moment(self, k: int) -> float:
        return self.central[k]

    def tail_probability(self, threshold: float, costs: np.ndarray) -> float:
        return float(np.mean(costs >= threshold))


def simulate_costs(
    program: Program,
    n: int,
    seed: int = 0,
    initial: dict[str, float] | None = None,
    max_steps: int = 1_000_000,
    nondet_policy: NondetPolicy = random_policy,
) -> np.ndarray:
    """Run ``program`` ``n`` times and return the accumulated costs.

    Non-terminating runs (hitting ``max_steps``) are dropped with a count
    kept by :func:`estimate_cost_statistics`; for the almost-surely
    terminating benchmark suite they are vanishingly rare.
    """
    machine = Machine(program, nondet_policy)
    rng = np.random.default_rng(seed)
    costs = []
    for _ in range(n):
        result = machine.run(rng, initial=initial, max_steps=max_steps)
        if result.terminated:
            costs.append(result.cost)
    return np.asarray(costs)


def estimate_cost_statistics(
    program: Program,
    n: int = 10_000,
    seed: int = 0,
    degree: int = 4,
    initial: dict[str, float] | None = None,
    max_steps: int = 1_000_000,
    nondet_policy: NondetPolicy = random_policy,
) -> CostStatistics:
    costs = simulate_costs(
        program, n, seed=seed, initial=initial, max_steps=max_steps,
        nondet_policy=nondet_policy,
    )
    if len(costs) == 0:
        raise RuntimeError("no terminating runs observed")
    mean = float(np.mean(costs))
    raw = [float(np.mean(costs**k)) for k in range(degree + 1)]
    central = [1.0, 0.0] + [
        float(np.mean((costs - mean) ** k)) for k in range(2, degree + 1)
    ]
    var = central[2] if degree >= 2 else float("nan")
    skewness = central[3] / var**1.5 if degree >= 3 and var > 0 else math.nan
    kurtosis = central[4] / var**2 if degree >= 4 and var > 0 else math.nan
    return CostStatistics(
        samples=len(costs),
        mean=mean,
        raw=raw,
        central=central,
        skewness=skewness,
        kurtosis=kurtosis,
        timeouts=n - len(costs),
    )


def density_histogram(
    costs: np.ndarray, bins: int = 60
) -> tuple[np.ndarray, np.ndarray]:
    """Normalized histogram (midpoints, densities) — Fig. 11's estimates."""
    densities, edges = np.histogram(costs, bins=bins, density=True)
    midpoints = 0.5 * (edges[:-1] + edges[1:])
    return midpoints, densities
