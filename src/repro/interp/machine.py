"""Small-step operational semantics of Appl (Appendix B of the paper).

Configurations are quadruples ``<γ, S, K, α>`` — valuation, statement,
continuation, cost accumulator.  Continuations are explicit (``Kstop``,
``Kloop``, ``Kseq``), exactly as in the paper's Markov-chain semantics, which
also keeps the interpreter iterative: deep recursion chains (the Fig. 10
synthetic benchmarks stack hundreds of calls) do not touch the Python stack.

Nondeterministic branches are resolved by a pluggable policy (the semantics
in the paper is demonic; simulation needs *some* resolution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.lang.ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Cmp,
    Cond,
    Const,
    Expr,
    IfBranch,
    And,
    Not,
    Or,
    NondetBranch,
    ProbBranch,
    Program,
    Sample,
    Seq,
    Skip,
    Stmt,
    Tick,
    Var,
    While,
)

NondetPolicy = Callable[[NondetBranch, dict[str, float], np.random.Generator], bool]


def random_policy(
    stmt: NondetBranch, valuation: dict[str, float], rng: np.random.Generator
) -> bool:
    return bool(rng.random() < 0.5)


def left_policy(
    stmt: NondetBranch, valuation: dict[str, float], rng: np.random.Generator
) -> bool:
    return True


def eval_expr(expr: Expr, valuation: dict[str, float]) -> float:
    if isinstance(expr, Var):
        return valuation.get(expr.name, 0.0)
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, valuation)
        right = eval_expr(expr.right, valuation)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        raise ValueError(f"unknown operator {expr.op!r}")
    raise TypeError(f"unknown expression {expr!r}")


def eval_cond(cond: Cond, valuation: dict[str, float]) -> bool:
    if isinstance(cond, BoolLit):
        return cond.value
    if isinstance(cond, Cmp):
        left = eval_expr(cond.left, valuation)
        right = eval_expr(cond.right, valuation)
        return {
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
            "==": left == right,
            "!=": left != right,
        }[cond.op]
    if isinstance(cond, Not):
        return not eval_cond(cond.arg, valuation)
    if isinstance(cond, And):
        return eval_cond(cond.left, valuation) and eval_cond(cond.right, valuation)
    if isinstance(cond, Or):
        return eval_cond(cond.left, valuation) or eval_cond(cond.right, valuation)
    raise TypeError(f"unknown condition {cond!r}")


# Continuation frames: ("loop", cond, body) | ("seq", stmt)
_Frame = tuple


@dataclass
class RunResult:
    """Outcome of one execution."""

    cost: float
    steps: int
    terminated: bool
    valuation: dict[str, float]


class Machine:
    """Iterative evaluator for a single program."""

    def __init__(
        self,
        program: Program,
        nondet_policy: NondetPolicy = random_policy,
    ) -> None:
        self.program = program
        self.nondet_policy = nondet_policy

    def run(
        self,
        rng: np.random.Generator,
        initial: dict[str, float] | None = None,
        max_steps: int = 1_000_000,
    ) -> RunResult:
        valuation: dict[str, float] = dict(initial or {})
        cost = 0.0
        steps = 0
        stack: list[_Frame] = []
        current: Stmt | None = self.program.main_fun.body

        while steps < max_steps:
            steps += 1
            if current is None:
                if not stack:
                    return RunResult(cost, steps, True, valuation)
                frame = stack.pop()
                if frame[0] == "seq":
                    current = frame[1]
                else:  # loop frame: re-test the guard
                    _, cond, body = frame
                    if eval_cond(cond, valuation):
                        stack.append(frame)
                        current = body
                    else:
                        current = None
                continue

            stmt = current
            if isinstance(stmt, Skip):
                current = None
            elif isinstance(stmt, Tick):
                cost += stmt.cost
                current = None
            elif isinstance(stmt, Assign):
                valuation[stmt.var] = eval_expr(stmt.expr, valuation)
                current = None
            elif isinstance(stmt, Sample):
                valuation[stmt.var] = stmt.dist.sample(rng)
                current = None
            elif isinstance(stmt, Call):
                current = self.program.fun(stmt.func).body
            elif isinstance(stmt, Seq):
                for s in reversed(stmt.stmts[1:]):
                    stack.append(("seq", s))
                current = stmt.stmts[0]
            elif isinstance(stmt, ProbBranch):
                take_then = rng.random() < stmt.prob
                current = stmt.then_branch if take_then else stmt.else_branch
            elif isinstance(stmt, NondetBranch):
                take_left = self.nondet_policy(stmt, valuation, rng)
                current = stmt.left if take_left else stmt.right
            elif isinstance(stmt, IfBranch):
                taken = eval_cond(stmt.cond, valuation)
                current = stmt.then_branch if taken else stmt.else_branch
            elif isinstance(stmt, While):
                if eval_cond(stmt.cond, valuation):
                    stack.append(("loop", stmt.cond, stmt.body))
                    current = stmt.body
                else:
                    current = None
            else:
                raise TypeError(f"unknown statement {stmt!r}")

        return RunResult(cost, steps, False, valuation)
