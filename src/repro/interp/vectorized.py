"""Batched Monte-Carlo engine: N trajectories advanced simultaneously.

The per-trajectory :class:`~repro.interp.machine.Machine` spends essentially
all of its time in the Python interpreter loop — one isinstance chain plus a
recursive ``eval_expr`` per small step.  This module trades that loop for
data parallelism, SIMT-style:

1. **Compilation.**  The program is flattened once into a bytecode array
   (:class:`CompiledProgram`): straight-line ops plus explicit jumps.
   Structured control flow disappears — a ``while`` becomes a conditional
   branch back-edge, a ``call`` pushes a return address.  Expressions and
   conditions compile to closures over a ``(n, vars)`` float matrix, so one
   evaluation covers every trajectory currently at that instruction.
2. **Masked stepping.**  Runtime state is columnar: a ``(N, vars)`` valuation
   matrix, an ``(N,)`` cost vector, an ``(N,)`` program counter, and a
   growable ``(N, depth)`` return-address stack.  Each superstep partitions
   the live trajectories by program counter and executes every distinct
   instruction once on its whole cohort — sampling, arithmetic, branching,
   and cost accumulation are single NumPy calls on the cohort.  A trajectory
   that halts drops out of the partition; the run ends when all are done (or
   hit ``max_steps``, reported per-trajectory like ``Machine``'s timeout).

The cohort sizes are what make this fast: a program with I instructions has
at most I cohorts per superstep no matter how desynchronized the N
trajectories get, so the Python-level work per superstep is O(I) while the
numeric work covers ~N trajectory-steps.  ``benchmarks/bench_mc.py`` records
the resulting speedup over the scalar machine (>=20x on the Fig. 10
workload at N=10k).

Random-number use differs from ``Machine`` (cohort draws instead of one
stream per trajectory), so identical seeds give *distributionally* identical
but not bitwise-identical trajectories; ``tests/test_vectorized.py`` checks
exact parity on deterministic programs and statistical parity elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.deadline import AnalysisTimeout, current_deadline
from repro.lang.ast import (
    And,
    Assign,
    BinOp,
    BoolLit,
    Call,
    Cmp,
    Cond,
    Const,
    Discrete,
    Distribution,
    Expr,
    IfBranch,
    Not,
    NondetBranch,
    Or,
    ProbBranch,
    Program,
    Sample,
    Seq,
    Skip,
    Stmt,
    Tick,
    Uniform,
    Var,
    While,
)

#: How nondeterministic branches are resolved for the whole batch:
#: ``"random"`` flips a fair coin per trajectory (the default, matching
#: :func:`repro.interp.machine.random_policy`), ``"left"``/``"right"`` pin
#: the branch.  The analyzer's nondet join contains *both* branch intervals,
#: so any resolution must stay inside the inferred bounds — which is exactly
#: what the differential harness checks.
NONDET_POLICIES = ("random", "left", "right")


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

# Opcodes.  Each instruction is (op, arg1, arg2); unused slots are None.
OP_HALT = 0       # ()
OP_TICK = 1       # (cost,)
OP_ASSIGN = 2     # (var_index, expr_fn)
OP_SAMPLE = 3     # (var_index, sampler_fn)
OP_JUMP = 4       # (target,)
OP_BRANCH = 5     # (cond_fn, else_target)       pc+1 when true
OP_PROB = 6       # (prob, else_target)          pc+1 with probability p
OP_NONDET = 7     # (else_target,)               policy-resolved
OP_CALL = 8       # (target,)                    pushes pc+1
OP_RET = 9        # ()                           pops return address


#: Longest straight-line trace one cohort chases within a single superstep
#: (see ``VectorizedMachine.run``); bounds the latency of the per-trajectory
#: ``max_steps`` timeout check.
_BLOCK_BUDGET = 64

ExprFn = Callable[[np.ndarray], np.ndarray]
CondFn = Callable[[np.ndarray], np.ndarray]
SamplerFn = Callable[[np.random.Generator, int], np.ndarray]


def collect_variables(program: Program) -> tuple[str, ...]:
    """Every variable mentioned anywhere in the program, sorted."""
    names: set[str] = set()

    def walk_expr(expr: Expr) -> None:
        if isinstance(expr, Var):
            names.add(expr.name)
        elif isinstance(expr, BinOp):
            walk_expr(expr.left)
            walk_expr(expr.right)

    def walk_cond(cond: Cond) -> None:
        if isinstance(cond, Cmp):
            walk_expr(cond.left)
            walk_expr(cond.right)
        elif isinstance(cond, Not):
            walk_cond(cond.arg)
        elif isinstance(cond, (And, Or)):
            walk_cond(cond.left)
            walk_cond(cond.right)

    def walk_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            names.add(stmt.var)
            walk_expr(stmt.expr)
        elif isinstance(stmt, Sample):
            names.add(stmt.var)
        elif isinstance(stmt, Seq):
            for s in stmt.stmts:
                walk_stmt(s)
        elif isinstance(stmt, (ProbBranch, IfBranch)):
            if isinstance(stmt, IfBranch):
                walk_cond(stmt.cond)
            walk_stmt(stmt.then_branch)
            walk_stmt(stmt.else_branch)
        elif isinstance(stmt, NondetBranch):
            walk_stmt(stmt.left)
            walk_stmt(stmt.right)
        elif isinstance(stmt, While):
            walk_cond(stmt.cond)
            walk_stmt(stmt.body)

    for fun in program.functions.values():
        for cond in fun.pre:
            walk_cond(cond)
        walk_stmt(fun.body)
    return tuple(sorted(names))


def compile_expr(expr: Expr, index: dict[str, int]) -> ExprFn:
    """Compile to a closure mapping an ``(n, vars)`` matrix to ``(n,)``."""
    if isinstance(expr, Var):
        col = index[expr.name]
        return lambda vals: vals[:, col]
    if isinstance(expr, Const):
        value = float(expr.value)
        return lambda vals: np.full(vals.shape[0], value)
    if isinstance(expr, BinOp):
        left = compile_expr(expr.left, index)
        right = compile_expr(expr.right, index)
        if expr.op == "+":
            return lambda vals: left(vals) + right(vals)
        if expr.op == "-":
            return lambda vals: left(vals) - right(vals)
        if expr.op == "*":
            return lambda vals: left(vals) * right(vals)
        raise ValueError(f"unknown operator {expr.op!r}")
    raise TypeError(f"unknown expression {expr!r}")


def compile_cond(cond: Cond, index: dict[str, int]) -> CondFn:
    """Compile to a closure mapping an ``(n, vars)`` matrix to ``(n,)`` bool."""
    if isinstance(cond, BoolLit):
        value = bool(cond.value)
        return lambda vals: np.full(vals.shape[0], value)
    if isinstance(cond, Cmp):
        left = compile_expr(cond.left, index)
        right = compile_expr(cond.right, index)
        op = {
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
            "==": np.equal,
            "!=": np.not_equal,
        }[cond.op]
        return lambda vals: op(left(vals), right(vals))
    if isinstance(cond, Not):
        arg = compile_cond(cond.arg, index)
        return lambda vals: ~arg(vals)
    if isinstance(cond, And):
        left, right = compile_cond(cond.left, index), compile_cond(cond.right, index)
        return lambda vals: left(vals) & right(vals)
    if isinstance(cond, Or):
        left, right = compile_cond(cond.left, index), compile_cond(cond.right, index)
        return lambda vals: left(vals) | right(vals)
    raise TypeError(f"unknown condition {cond!r}")


def compile_sampler(dist: Distribution) -> SamplerFn:
    """One vectorized draw per cohort; same laws as ``Distribution.sample``."""
    if isinstance(dist, Uniform):
        a, b = float(dist.a), float(dist.b)
        return lambda rng, n: rng.uniform(a, b, size=n)
    if isinstance(dist, Discrete):
        values = np.array([v for v, _ in dist.outcomes])
        cum = np.cumsum([p for _, p in dist.outcomes])
        cum[-1] = 1.0  # guard against round-off excluding the last outcome

        def draw(rng: np.random.Generator, n: int) -> np.ndarray:
            return values[np.searchsorted(cum, rng.random(n), side="left")]

        return draw
    raise TypeError(f"unknown distribution {dist!r}")


@dataclass
class CompiledProgram:
    """Flat bytecode plus the variable layout it was compiled against."""

    ops: list[tuple]
    variables: tuple[str, ...]
    index: dict[str, int]
    entry: int = 0

    @property
    def size(self) -> int:
        return len(self.ops)


def compile_program(program: Program) -> CompiledProgram:
    """Flatten ``program`` into jump-threaded bytecode.

    Layout: instruction 0 is ``CALL main``, instruction 1 is ``HALT``; each
    function body follows, terminated by ``RET``.  Function call targets are
    patched after all bodies are placed.
    """
    variables = collect_variables(program)
    index = {name: i for i, name in enumerate(variables)}
    ops: list[tuple] = [None, (OP_HALT, None, None)]  # 0 patched to CALL main
    fun_entry: dict[str, int] = {}
    call_patches: list[tuple[int, str]] = []

    def emit(op: tuple) -> int:
        ops.append(op)
        return len(ops) - 1

    def emit_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Skip):
            return
        if isinstance(stmt, Tick):
            emit((OP_TICK, float(stmt.cost), None))
            return
        if isinstance(stmt, Assign):
            emit((OP_ASSIGN, index[stmt.var], compile_expr(stmt.expr, index)))
            return
        if isinstance(stmt, Sample):
            emit((OP_SAMPLE, index[stmt.var], compile_sampler(stmt.dist)))
            return
        if isinstance(stmt, Call):
            call_patches.append((emit((OP_CALL, None, None)), stmt.func))
            return
        if isinstance(stmt, Seq):
            for s in stmt.stmts:
                emit_stmt(s)
            return
        if isinstance(stmt, (ProbBranch, IfBranch, NondetBranch)):
            if isinstance(stmt, ProbBranch):
                branch_at = emit((OP_PROB, float(stmt.prob), None))
                then_branch, else_branch = stmt.then_branch, stmt.else_branch
            elif isinstance(stmt, IfBranch):
                branch_at = emit((OP_BRANCH, compile_cond(stmt.cond, index), None))
                then_branch, else_branch = stmt.then_branch, stmt.else_branch
            else:
                branch_at = emit((OP_NONDET, None, None))
                then_branch, else_branch = stmt.left, stmt.right
            emit_stmt(then_branch)
            if isinstance(else_branch, Skip):
                # Fall through: the else-target is simply past the then-arm.
                op, arg, _ = ops[branch_at]
                ops[branch_at] = (op, arg, len(ops))
            else:
                jump_at = emit((OP_JUMP, None, None))
                op, arg, _ = ops[branch_at]
                ops[branch_at] = (op, arg, len(ops))
                emit_stmt(else_branch)
                ops[jump_at] = (OP_JUMP, len(ops), None)
            return
        if isinstance(stmt, While):
            test_at = emit((OP_BRANCH, compile_cond(stmt.cond, index), None))
            emit_stmt(stmt.body)
            emit((OP_JUMP, test_at, None))
            op, arg, _ = ops[test_at]
            ops[test_at] = (op, arg, len(ops))
            return
        raise TypeError(f"unknown statement {stmt!r}")

    for name, fun in program.functions.items():
        fun_entry[name] = len(ops)
        emit_stmt(fun.body)
        emit((OP_RET, None, None))

    ops[0] = (OP_CALL, fun_entry[program.main], None)
    for at, name in call_patches:
        ops[at] = (OP_CALL, fun_entry[name], None)
    _optimize(ops)
    return CompiledProgram(ops=ops, variables=variables, index=index)


def _chase(ops: list[tuple], target: int) -> int:
    """Follow a chain of unconditional jumps to its final destination."""
    seen = set()
    while ops[target][0] == OP_JUMP and target not in seen:
        seen.add(target)
        target = ops[target][1]
    return target


def _optimize(ops: list[tuple]) -> None:
    """Jump threading + tail-call elimination, in place.

    Both matter for cohort sizes, not just raw step counts: a ``call`` whose
    continuation is ``ret`` (directly or through jumps) is rewritten into a
    jump, so tail-recursive programs — the coupon-collector chains of the
    Fig. 10 workload are nothing but tail calls — run with constant stack
    depth and never pay the divergent return-address scatter that would
    otherwise split their cohorts once per call.
    """
    for i, (op, a, b) in enumerate(ops):
        if op == OP_JUMP:
            ops[i] = (op, _chase(ops, a), None)
        elif op in (OP_BRANCH, OP_PROB, OP_NONDET):
            ops[i] = (op, a, _chase(ops, b))
    for i, (op, a, b) in enumerate(ops):
        if op == OP_CALL and ops[_chase(ops, i + 1)][0] == OP_RET:
            ops[i] = (OP_JUMP, a, None)


# ---------------------------------------------------------------------------
# Batched execution
# ---------------------------------------------------------------------------


@dataclass
class BatchRunResult:
    """Columnar outcome of ``n`` executions (rows align across arrays)."""

    costs: np.ndarray        # (n,) float — accumulated cost per trajectory
    steps: np.ndarray        # (n,) int — instructions executed per trajectory
    terminated: np.ndarray   # (n,) bool — False = hit max_steps
    valuations: np.ndarray   # (n, vars) float — final variable values
    variables: tuple[str, ...]

    @property
    def terminated_costs(self) -> np.ndarray:
        """Costs of the terminating trajectories only (what MC estimates use)."""
        return self.costs[self.terminated]

    def valuation_of(self, row: int) -> dict[str, float]:
        return {
            name: float(self.valuations[row, col])
            for col, name in enumerate(self.variables)
        }


class VectorizedMachine:
    """Batched evaluator for one program; reusable across runs/seeds."""

    def __init__(self, program: Program, nondet_policy: str = "random") -> None:
        if nondet_policy not in NONDET_POLICIES:
            raise ValueError(
                f"unknown nondet policy {nondet_policy!r}; "
                f"expected one of {NONDET_POLICIES}"
            )
        self.program = program
        self.compiled = compile_program(program)
        self.nondet_policy = nondet_policy

    def run(
        self,
        n: int,
        rng: np.random.Generator,
        initial: dict[str, float] | None = None,
        max_steps: int = 1_000_000,
    ) -> BatchRunResult:
        """Advance ``n`` trajectories to termination (or ``max_steps`` each).

        ``max_steps`` counts executed bytecode instructions per trajectory —
        the vectorized analogue of ``Machine.run``'s small-step budget (the
        two step counts differ by bounded per-construct constants; both are
        linear in the trajectory's true length).
        """
        compiled = self.compiled
        ops = compiled.ops
        num_vars = len(compiled.variables)
        vals = np.zeros((n, num_vars))
        for name, value in (initial or {}).items():
            if name in compiled.index:
                vals[:, compiled.index[name]] = value
        costs = np.zeros(n)
        steps = np.zeros(n, dtype=np.int64)
        pcs = np.zeros(n, dtype=np.int64)  # entry: instruction 0 is CALL main
        halted = np.zeros(n, dtype=bool)
        # Return-address stacks, columnar: (n, depth) grown on demand.
        stack = np.zeros((n, 8), dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)

        # A cohort (all live trajectories at one pc) executes a whole
        # straight-line trace per superstep: TICK/ASSIGN/SAMPLE advance to
        # pc+1 and JUMP/CALL move the entire cohort together, so the trace
        # is chased until a *divergent* instruction — BRANCH/PROB/NONDET
        # split the cohort, RET scatters it across return addresses, HALT
        # ends it.  Divergence that turns out unanimous (a branch every
        # member takes the same way, a return the whole cohort makes to one
        # address) does not stop the chase.  ``_BLOCK_BUDGET`` bounds each
        # chase so the per-trajectory timeout check between supersteps is
        # reached even by call chains with no intervening divergence.
        #
        # The live state is *gathered* into pc-sorted compact arrays once
        # per superstep, so every cohort is a contiguous slice and the hot
        # per-op array expressions are cheap view operations rather than
        # fancy-indexed gathers; only the (rare) CALL/RET stack traffic
        # addresses the full-size arrays.  The compact state is scattered
        # back at the end of the superstep.
        live = np.arange(n)
        deadline = current_deadline()
        while live.size:
            # Superstep granularity is the natural check boundary: cohorts
            # are pure NumPy inside, so this is the innermost point an
            # ambient deadline can interrupt the simulation.
            if deadline is not None:
                deadline.check("mc.superstep")
            live_pcs = pcs[live]
            order = np.argsort(live_pcs, kind="stable")
            rows_sorted = live[order]
            sorted_pcs = live_pcs[order]
            boundaries = np.flatnonzero(np.diff(sorted_pcs)) + 1
            starts = np.concatenate(([0], boundaries, [sorted_pcs.size]))
            cvals = vals[rows_sorted]
            ccosts = costs[rows_sorted]
            cpcs = sorted_pcs.copy()
            csteps = np.zeros(sorted_pcs.size, dtype=np.int64)
            chalt = np.zeros(sorted_pcs.size, dtype=bool)
            for c in range(starts.size - 1):
                s = slice(starts[c], starts[c + 1])
                size = starts[c + 1] - starts[c]
                pc = int(sorted_pcs[starts[c]])
                rows = None  # materialized lazily for stack traffic
                executed = 0
                for _ in range(_BLOCK_BUDGET):
                    op, a, b = ops[pc]
                    if op == OP_TICK:
                        ccosts[s] += a
                        pc += 1
                    elif op == OP_ASSIGN:
                        view = cvals[s]
                        view[:, a] = b(view)
                        pc += 1
                    elif op == OP_SAMPLE:
                        cvals[s, a] = b(rng, size)
                        pc += 1
                    elif op == OP_JUMP:
                        pc = a
                    elif op == OP_CALL:
                        if rows is None:
                            rows = rows_sorted[s]
                        d = depth[rows]
                        if int(d.max()) >= stack.shape[1]:
                            stack = np.concatenate(
                                [stack, np.zeros_like(stack)], axis=1
                            )
                        stack[rows, d] = pc + 1
                        depth[rows] = d + 1
                        pc = a
                    elif op == OP_BRANCH:
                        taken = a(cvals[s])
                        if taken.all():
                            pc += 1  # cohort agrees: keep chasing
                        elif not taken.any():
                            pc = b
                        else:
                            cpcs[s] = np.where(taken, pc + 1, b)
                            executed += 1
                            break
                    elif op == OP_PROB:
                        taken = rng.random(size) < a
                        cpcs[s] = np.where(taken, pc + 1, b)
                        executed += 1
                        break
                    elif op == OP_NONDET:
                        if self.nondet_policy == "left":
                            cpcs[s] = pc + 1
                        elif self.nondet_policy == "right":
                            cpcs[s] = b
                        else:
                            taken = rng.random(size) < 0.5
                            cpcs[s] = np.where(taken, pc + 1, b)
                        executed += 1
                        break
                    elif op == OP_RET:
                        if rows is None:
                            rows = rows_sorted[s]
                        d = depth[rows] - 1
                        depth[rows] = d
                        rets = stack[rows, d]
                        first = int(rets[0])
                        if (rets == first).all():
                            pc = first  # synchronized unwind: keep chasing
                        else:
                            cpcs[s] = rets
                            executed += 1
                            break
                    elif op == OP_HALT:
                        chalt[s] = True
                        cpcs[s] = pc
                        break
                    else:  # pragma: no cover - compiler emits only known ops
                        raise RuntimeError(f"unknown opcode {op}")
                    executed += 1
                else:
                    # Budget exhausted mid-trace: park the cohort at pc; the
                    # next superstep resumes it (after the timeout check).
                    cpcs[s] = pc
                csteps[s] = executed
            vals[rows_sorted] = cvals
            costs[rows_sorted] = ccosts
            pcs[rows_sorted] = cpcs
            new_steps = steps[rows_sorted] + csteps
            steps[rows_sorted] = new_steps
            halted[rows_sorted] = chalt
            # Only this superstep's rows can leave the live set.
            live = rows_sorted[~chalt & (new_steps < max_steps)]
        return BatchRunResult(
            costs=costs,
            steps=steps,
            terminated=halted,
            valuations=vals,
            variables=compiled.variables,
        )


def simulate_costs_vectorized(
    program: Program,
    n: int,
    seed: int = 0,
    initial: dict[str, float] | None = None,
    max_steps: int = 1_000_000,
    nondet_policy: str = "random",
) -> np.ndarray:
    """Batched analogue of :func:`repro.interp.mc.simulate_costs`.

    Returns the accumulated costs of the terminating trajectories (runs that
    exhaust ``max_steps`` are dropped, exactly like the scalar path).
    """
    machine = VectorizedMachine(program, nondet_policy=nondet_policy)
    result = machine.run(
        n, np.random.default_rng(seed), initial=initial, max_steps=max_steps
    )
    return result.terminated_costs


__all__ = [
    "BatchRunResult",
    "CompiledProgram",
    "NONDET_POLICIES",
    "VectorizedMachine",
    "collect_variables",
    "compile_program",
    "simulate_costs_vectorized",
]
