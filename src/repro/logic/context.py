"""Logical contexts: the "polyhedra-lite" abstract domain.

A :class:`Context` is a finite conjunction of linear inequalities over
program variables (or bottom, for unreachable code).  It supports exactly
the operations the derivation system and abstract interpreter need:

* strongest-postcondition transfer for (invertible) linear assignments,
* sampling (havoc + support bounds),
* havoc for function calls,
* join at control-flow merges (mutual-entailment filtering),
* entailment queries (Farkas/LP, exact over the reals).

This stands in for APRON in the paper's implementation; see DESIGN.md
section 2 for why the substitution is behaviour-preserving.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.lang.ast import Cond, Expr
from repro.logic import entail
from repro.logic.linear import LinExpr, LinIneq, cond_to_ineqs


#: Structural context key -> int id, process-wide (see ``cache_key``).  The
#: dict is capped: on overflow it is cleared, but ids keep counting up from
#: ``_KEY_COUNTER`` — an id, once issued, is never reused, so a stale id
#: cached on a live Context can never collide with a fresh one (it just
#: misses the downstream certificate-basis memo and recomputes).
_KEY_INTERN: dict[tuple, int] = {}
_KEY_COUNTER = 0
_KEY_INTERN_CAP = 16384
_KEY_LOCK = threading.Lock()


@dataclass(frozen=True)
class Context:
    ineqs: tuple[LinIneq, ...] = ()
    bottom: bool = False
    #: Variables known integer-valued; lets assume() strengthen strict
    #: comparisons (see repro.logic.linear.cmp_to_ineqs).
    integer_vars: frozenset = frozenset()

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def top(integer_vars: frozenset = frozenset()) -> "Context":
        return Context((), False, integer_vars)

    @staticmethod
    def bot() -> "Context":
        return Context((), True)

    @staticmethod
    def of_conds(
        conds: "list[Cond] | tuple[Cond, ...]",
        integer_vars: frozenset = frozenset(),
    ) -> "Context":
        ctx = Context.top(integer_vars)
        for cond in conds:
            ctx = ctx.assume(cond)
        return ctx

    # -- structure ---------------------------------------------------------------

    def _with(self, new_ineqs: list[LinIneq]) -> "Context":
        seen: list[LinIneq] = []
        for ineq in new_ineqs:
            if ineq.is_trivial() or ineq in seen:
                continue
            seen.append(ineq)
        return Context(tuple(seen), False, self.integer_vars)

    def add(self, *ineqs: LinIneq) -> "Context":
        if self.bottom:
            return self
        return self._with(list(self.ineqs) + list(ineqs))

    def assume(self, cond: Cond) -> "Context":
        if self.bottom:
            return self
        ineqs = cond_to_ineqs(cond, self.integer_vars)
        if ineqs is None:
            return Context.bot()
        return self.add(*ineqs)

    # -- transfer functions -------------------------------------------------------

    def assign(self, var: str, expr: Expr) -> "Context":
        """Strongest postcondition of ``var := expr`` (exact when linear)."""
        if self.bottom:
            return self
        rhs = LinExpr.from_polynomial(expr.to_polynomial())
        if rhs is None:
            return self.havoc([var])
        self_coeff = rhs.coeff(var)
        if self_coeff != 0.0:
            # Invertible update: old var = (var - rest) / coeff.
            rest = rhs - LinExpr.var(var, self_coeff)
            replacement = (LinExpr.var(var) - rest).scale(1.0 / self_coeff)
            return self._with([g.substitute(var, replacement) for g in self.ineqs])
        kept = [g for g in self.ineqs if var not in g.variables()]
        equality = LinExpr.var(var) - rhs
        kept.append(LinIneq(equality))
        kept.append(LinIneq(-equality))
        return self._with(kept)

    def sample(self, var: str, support: tuple[float, float]) -> "Context":
        """Transfer for ``var ~ D`` with ``support(D) ⊆ [lo, hi]``."""
        if self.bottom:
            return self
        kept = [g for g in self.ineqs if var not in g.variables()]
        lo, hi = support
        if lo != float("-inf"):
            kept.append(LinIneq(LinExpr.var(var) - lo))
        if hi != float("inf"):
            kept.append(LinIneq(LinExpr.constant(hi) - LinExpr.var(var)))
        return self._with(kept)

    def havoc(self, variables) -> "Context":
        if self.bottom:
            return self
        variables = set(variables)
        return self._with(
            [g for g in self.ineqs if not (g.variables() & variables)]
        )

    def meet(self, other: "Context") -> "Context":
        if self.bottom or other.bottom:
            return Context.bot()
        return self.add(*other.ineqs)

    def join(self, other: "Context") -> "Context":
        """Over-approximate union: keep mutually entailed facts."""
        if self.bottom:
            return other
        if other.bottom:
            return self
        kept = [g for g in self.ineqs if other.entails(g)]
        kept += [g for g in other.ineqs if self.entails(g) and g not in kept]
        return self._with(kept)

    # -- queries -----------------------------------------------------------------

    @property
    def cache_key(self) -> int:
        """A small interned integer identifying this context's constraints.

        Used by :mod:`repro.logic.handelman` to memoize certificate product
        sets per ``(context, degree)``: the derivation system re-visits the
        same handful of contexts hundreds of times (pre/post pairs of every
        containment, loop back/exit edges, all ``m+1`` moment components),
        and the products depend only on ``ineqs``.  Interning the structural
        key once per distinct context (and caching the id on the instance —
        contexts are frozen, so it cannot go stale) keeps the per-emission
        memo probe to one int hash instead of re-hashing the inequality
        tuples on every certificate.
        """
        try:
            return self._cache_key  # type: ignore[attr-defined]
        except AttributeError:
            global _KEY_COUNTER
            structural = (self.ineqs, self.bottom)
            with _KEY_LOCK:
                key = _KEY_INTERN.get(structural)
                if key is None:
                    if len(_KEY_INTERN) >= _KEY_INTERN_CAP:
                        # Unbounded workloads (serve, nightly fuzz budgets)
                        # must not grow this forever; ids stay monotone so
                        # already-issued keys remain unambiguous.
                        _KEY_INTERN.clear()
                    key = _KEY_COUNTER
                    _KEY_COUNTER += 1
                    _KEY_INTERN[structural] = key
            object.__setattr__(self, "_cache_key", key)
            return key

    def __getstate__(self):
        # ``_cache_key`` is a process-local intern id; a pickled copy landing
        # in another process (artifact cache, process executor) must re-intern.
        state = dict(self.__dict__)
        state.pop("_cache_key", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def entails(self, ineq: LinIneq) -> bool:
        if self.bottom:
            return True
        return entail.entails(self.ineqs, ineq)

    def entails_all(self, ineqs) -> bool:
        return all(self.entails(g) for g in ineqs)

    def entails_cond(self, cond: Cond) -> bool:
        ineqs = cond_to_ineqs(cond, self.integer_vars)
        if ineqs is None:
            return self.bottom
        return self.entails_all(ineqs)

    def is_feasible(self) -> bool:
        if self.bottom:
            return False
        return entail.is_feasible(self.ineqs)

    def variables(self) -> set[str]:
        out: set[str] = set()
        for g in self.ineqs:
            out |= g.variables()
        return out

    def __repr__(self) -> str:
        if self.bottom:
            return "⊥"
        if not self.ineqs:
            return "⊤"
        return " ∧ ".join(repr(g) for g in self.ineqs)
