"""Entailment between linear assertions, decided exactly via LP.

``Γ |= e >= 0`` over the reals holds iff the minimum of ``e`` subject to the
constraints of Γ is nonnegative (including the vacuous case where Γ is
infeasible).  By LP duality this is equivalent to the Farkas certificate
``e = λ0 + Σ λ_i g_i`` with ``λ >= 0`` that the paper's rewrite functions
use; solving the primal with HiGHS is both exact enough and simpler.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.optimize import linprog

from repro.logic.linear import LinExpr, LinIneq


@lru_cache(maxsize=100_000)
def _entails_cached(
    gamma: tuple[LinIneq, ...], target: LinIneq
) -> bool:
    variables = sorted(
        set().union(*(g.variables() for g in gamma), target.variables())
        if gamma
        else target.variables()
    )
    if not variables:
        feasible = all(g.expr.const >= 0 for g in gamma)
        return (not feasible) or target.expr.const >= -1e-9

    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)

    # Constraints g_i(x) >= 0  become  -coeffs . x <= const.
    a_ub = np.zeros((len(gamma), n))
    b_ub = np.zeros(len(gamma))
    for row, g in enumerate(gamma):
        for v, c in g.expr.coeffs:
            a_ub[row, index[v]] = -c
        b_ub[row] = g.expr.const

    objective = np.zeros(n)
    for v, c in target.expr.coeffs:
        objective[index[v]] = c

    result = linprog(
        objective,
        A_ub=a_ub if len(gamma) else None,
        b_ub=b_ub if len(gamma) else None,
        bounds=[(None, None)] * n,
        method="highs",
    )
    if result.status == 2:  # infeasible context entails everything
        return True
    if result.status == 3:  # unbounded below
        return False
    if not result.success:
        return False
    return result.fun + target.expr.const >= -1e-7


def entails(gamma: "tuple[LinIneq, ...] | list[LinIneq]", target: LinIneq) -> bool:
    """Does the conjunction of ``gamma`` entail ``target`` over the reals?"""
    if target.is_trivial():
        return True
    return _entails_cached(tuple(gamma), target)


def is_feasible(gamma: "tuple[LinIneq, ...] | list[LinIneq]") -> bool:
    """Is the conjunction of ``gamma`` satisfiable over the reals?"""
    contradiction = LinIneq(LinExpr.constant(-1.0))
    return not entails(tuple(gamma), contradiction)
