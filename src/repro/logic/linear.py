"""Linear assertions over program variables.

Logical contexts Γ in the derivation system are conjunctions of linear
inequalities ``e >= 0`` over program variables (section 3.4: "Γ is a set of
linear constraints over program variables of the form E >= 0").  Strict
comparisons from program guards are relaxed to their closures, which is sound
for bound derivation (the paper's implementation does the same).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import And, BoolLit, Cmp, Cond, Not, Or
from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial


@dataclass(frozen=True)
class LinExpr:
    """``const + sum_i coeff_i * x_i`` over *program* variables."""

    coeffs: tuple[tuple[str, float], ...]
    const: float = 0.0

    @staticmethod
    def build(coeffs: dict[str, float], const: float = 0.0) -> "LinExpr":
        items = tuple(sorted((v, float(c)) for v, c in coeffs.items() if c != 0.0))
        return LinExpr(items, float(const))

    @staticmethod
    def constant(value: float) -> "LinExpr":
        return LinExpr((), float(value))

    @staticmethod
    def var(name: str, coeff: float = 1.0) -> "LinExpr":
        return LinExpr.build({name: coeff})

    @staticmethod
    def from_polynomial(poly: Polynomial) -> "LinExpr | None":
        """Convert a degree <= 1 concrete polynomial; None otherwise."""
        if poly.degree() > 1 or not poly.is_concrete():
            return None
        coeffs: dict[str, float] = {}
        const = 0.0
        for mono, c in poly.coeffs.items():
            if mono.is_unit():
                const = float(c)
            else:
                ((var, _),) = mono.powers
                coeffs[var] = float(c)
        return LinExpr.build(coeffs, const)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "LinExpr | float | int") -> "LinExpr":
        other = _coerce(other)
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs:
            coeffs[v] = coeffs.get(v, 0.0) + c
        return LinExpr.build(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr(tuple((v, -c) for v, c in self.coeffs), -self.const)

    def __sub__(self, other: "LinExpr | float | int") -> "LinExpr":
        return self + (-_coerce(other))

    def scale(self, scalar: float) -> "LinExpr":
        if scalar == 0:
            return LinExpr.constant(0.0)
        return LinExpr(
            tuple((v, c * scalar) for v, c in self.coeffs), self.const * scalar
        )

    # -- queries ----------------------------------------------------------------

    def coeff(self, var: str) -> float:
        for v, c in self.coeffs:
            if v == var:
                return c
        return 0.0

    def variables(self) -> set[str]:
        return {v for v, _ in self.coeffs}

    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, valuation: dict[str, float]) -> float:
        return self.const + sum(c * valuation[v] for v, c in self.coeffs)

    def substitute(self, var: str, replacement: "LinExpr") -> "LinExpr":
        c = self.coeff(var)
        if c == 0.0:
            return self
        coeffs = {v: cc for v, cc in self.coeffs if v != var}
        base = LinExpr.build(coeffs, self.const)
        return base + replacement.scale(c)

    def to_polynomial(self) -> Polynomial:
        poly = Polynomial.constant(self.const)
        for v, c in self.coeffs:
            poly = poly + Polynomial({Monomial.of(v): c})
        return poly

    def __repr__(self) -> str:
        parts = []
        for v, c in self.coeffs:
            parts.append(f"{c:+g}*{v}")
        if self.const or not parts:
            parts.append(f"{self.const:+g}")
        return " ".join(parts).lstrip("+")


def _coerce(value: "LinExpr | float | int") -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, (int, float)):
        return LinExpr.constant(float(value))
    raise TypeError(f"cannot coerce {value!r} to LinExpr")


@dataclass(frozen=True)
class LinIneq:
    """The assertion ``expr >= 0``."""

    expr: LinExpr

    def variables(self) -> set[str]:
        return self.expr.variables()

    def holds(self, valuation: dict[str, float], tol: float = 1e-9) -> bool:
        return self.expr.evaluate(valuation) >= -tol

    def substitute(self, var: str, replacement: LinExpr) -> "LinIneq":
        return LinIneq(self.expr.substitute(var, replacement))

    def is_trivial(self) -> bool:
        return self.expr.is_constant() and self.expr.const >= 0.0

    def __repr__(self) -> str:
        return f"{self.expr!r} >= 0"


def _is_integer_linexpr(expr: LinExpr, integer_vars: frozenset[str]) -> bool:
    if not float(expr.const).is_integer():
        return False
    return all(
        v in integer_vars and float(c).is_integer() for v, c in expr.coeffs
    )


def cmp_to_ineqs(
    cmp: Cmp, integer_vars: frozenset[str] = frozenset()
) -> list[LinIneq] | None:
    """``e1 <op> e2`` as a list of closed linear inequalities, or None.

    Strict comparisons over *integer-valued* linear expressions are
    strengthened (``e1 < e2`` to ``e1 <= e2 - 1``) — the congruence
    reasoning APRON's integer domains provide in the paper's tool.
    Otherwise strict comparisons are relaxed to their closure.
    Disequalities carry no closed linear information and yield [].
    """
    left = LinExpr.from_polynomial(cmp.left.to_polynomial())
    right = LinExpr.from_polynomial(cmp.right.to_polynomial())
    if left is None or right is None:
        return None
    diff = right - left  # right - left >= 0  encodes  left <= right
    strict_gap = 1.0 if _is_integer_linexpr(diff, integer_vars) else 0.0
    if cmp.op == "<=":
        return [LinIneq(diff)]
    if cmp.op == "<":
        return [LinIneq(diff - strict_gap)]
    if cmp.op == ">=":
        return [LinIneq(-diff)]
    if cmp.op == ">":
        return [LinIneq((-diff) - strict_gap)]
    if cmp.op == "==":
        return [LinIneq(diff), LinIneq(-diff)]
    if cmp.op == "!=":
        return []
    raise ValueError(f"unknown comparison {cmp.op!r}")


def cond_to_ineqs(
    cond: Cond, integer_vars: frozenset[str] = frozenset()
) -> list[LinIneq] | None:
    """Conjunctive linear approximation of ``cond``.

    Returns the list of inequalities entailed by ``cond`` (the closed linear
    part of its conjuncts).  Disjunctions and negations of compounds
    contribute nothing (empty list); ``false`` returns None, which callers
    treat as an unreachable (bottom) context.
    """
    if isinstance(cond, BoolLit):
        return None if not cond.value else []
    if isinstance(cond, Cmp):
        ineqs = cmp_to_ineqs(cond, integer_vars)
        return [] if ineqs is None else ineqs
    if isinstance(cond, And):
        left = cond_to_ineqs(cond.left, integer_vars)
        right = cond_to_ineqs(cond.right, integer_vars)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(cond, Not):
        inner = cond.arg.negate()
        if isinstance(inner, Not):
            # ``not (not c)`` — negate() already unwraps, defensive only.
            return cond_to_ineqs(inner.arg, integer_vars)
        if inner is cond.arg:
            return []
        return cond_to_ineqs(inner, integer_vars)
    if isinstance(cond, Or):
        # Sound weakening: keep only facts common to both disjuncts is
        # expensive; contribute nothing.
        return []
    raise TypeError(f"unknown condition {cond!r}")
