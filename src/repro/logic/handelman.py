"""Handelman-style nonnegativity certificates ("rewrite functions").

To discharge ``Γ |= p >= 0`` for a *template* polynomial ``p`` (coefficients
affine in LP unknowns), the paper represents the slack as a conical
combination of products of the constraints of Γ (section 3.4: slack
polynomials as "conical combinations of expressions E in Γ", generalized to
products for polynomial templates — Handelman's Positivstellensatz).

:func:`certificate_products` enumerates the products ``g_{i1} * ... * g_{ik}``
of degree at most ``degree`` (including the empty product 1);
:func:`emit_nonneg_certificate` adds to an LP the fresh multipliers
``λ_j >= 0`` and the coefficient-matching equalities ``p == Σ λ_j prod_j``.

Vectorized emission
-------------------
Contexts repeat heavily — every containment emits ``2*(m+1)`` certificates
under the same Γ, and loop heads/branches re-visit identical constraint
sets — so the product set for a ``(context, degree)`` pair is computed once
and cached as a :class:`CertificateBasis`: a column-compressed layout of the
``(n_products, n_basis_monomials)`` coefficient matrix over the interned
monomial basis (:mod:`repro.poly.monomial`).  Emission then streams each
basis monomial's λ-column into its :class:`~repro.lp.affine.AffBuilder` as
one C-level ``dict.update`` over precomputed id/coefficient arrays, instead
of a per-product per-monomial Python loop.

The vectorized path replays the legacy loop *exactly* — same λ variable
names and allocation order, same float coefficients (the basis is built from
the same :func:`certificate_products` computation), same per-builder term
insertion order, same LP row order — so analyzer outputs are byte-identical
with the kernel on or off (``REPRO_DISABLE_POLY_KERNEL``).
"""

from __future__ import annotations

import itertools
import threading

import numpy as np

from repro.logic.context import Context
from repro.lp.affine import AffBuilder, AffForm
from repro.lp.problem import LPProblem
from repro.poly.kernel import kernel_enabled
from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial

#: Safety valve: contexts are small (a handful of constraints), but product
#: enumeration is combinatorial; certificates beyond this size indicate a
#: modelling problem rather than a precision need.
MAX_PRODUCTS = 2000

#: Memoized certificate bases per ``(context cache key, degree)``.  Bounded
#: only as a safety valve — a process analyzing one workload sees a few
#: hundred distinct keys.
_BASIS_CACHE: dict[tuple, "CertificateBasis"] = {}
_BASIS_LOCK = threading.Lock()
_BASIS_CACHE_CAP = 8192


class CertificateBasis:
    """One context's certificate products in column-compressed array form.

    ``columns`` holds, per basis monomial (in the exact first-encounter
    order of the legacy emission loop), the λ row indices that mention it
    and the *negated* float coefficients ready for ingestion: row ``j`` of
    column ``m`` says product ``j`` contributes ``-coeff`` to the
    coefficient-matching equality of monomial ``m``.
    """

    __slots__ = ("n_products", "columns")

    def __init__(
        self,
        n_products: int,
        columns: tuple[tuple[Monomial, np.ndarray, list[float]], ...],
    ):
        self.n_products = n_products
        self.columns = columns

    @staticmethod
    def from_products(products: list[Polynomial]) -> "CertificateBasis":
        cols: dict[Monomial, tuple[list[int], list[float]]] = {}
        for j, prod in enumerate(products):
            for mono, c in prod.coeffs.items():
                entry = cols.get(mono)
                if entry is None:
                    cols[mono] = entry = ([], [])
                entry[0].append(j)
                entry[1].append(-float(c))
        columns = tuple(
            (mono, np.asarray(rows, dtype=np.int64), negs)
            for mono, (rows, negs) in cols.items()
        )
        return CertificateBasis(len(products), columns)


def certificate_products(ctx: Context, degree: int) -> list[Polynomial]:
    """All products of Γ-constraints with total degree <= ``degree``.

    The first element is always the constant polynomial 1 (the ``λ0`` term).
    Duplicate constraints are skipped.
    """
    products: list[Polynomial] = [Polynomial.constant(1.0)]
    if degree <= 0:
        return products
    base = [g.expr.to_polynomial() for g in ctx.ineqs]
    for size in range(1, degree + 1):
        for combo in itertools.combinations_with_replacement(range(len(base)), size):
            prod = Polynomial.constant(1.0)
            for i in combo:
                prod = prod * base[i]
            products.append(prod)
            if len(products) > MAX_PRODUCTS:
                raise ValueError(
                    f"Handelman certificate blow-up: more than {MAX_PRODUCTS} "
                    f"products for a context with {len(base)} constraints at "
                    f"degree {degree}"
                )
    return products


def certificate_basis(ctx: Context, degree: int) -> CertificateBasis:
    """The memoized column-compressed product set for ``(ctx, degree)``.

    Cache misses run :func:`certificate_products` — the single source of
    truth for the product polynomials and their float coefficients — so a
    cached basis is indistinguishable from a fresh recomputation.
    """
    key = (ctx.cache_key, degree)
    basis = _BASIS_CACHE.get(key)
    if basis is not None:
        return basis
    basis = CertificateBasis.from_products(certificate_products(ctx, degree))
    with _BASIS_LOCK:
        if len(_BASIS_CACHE) >= _BASIS_CACHE_CAP:
            _BASIS_CACHE.clear()
        _BASIS_CACHE[key] = basis
    return basis


def clear_certificate_caches() -> None:
    """Drop memoized certificate bases (benchmarks measure cold derivations)."""
    with _BASIS_LOCK:
        _BASIS_CACHE.clear()


def certificate_cache_stats() -> dict[str, int]:
    return {"bases": len(_BASIS_CACHE)}


def emit_nonneg_certificate(
    lp: LPProblem,
    ctx: Context,
    poly: Polynomial,
    degree: int,
    label: str = "cert",
    minus: Polynomial | None = None,
) -> None:
    """Constrain ``poly - minus >= 0`` to hold under ``ctx`` (sufficient).

    Emits ``poly - minus == Σ_j λ_j prod_j`` with fresh ``λ_j >= 0`` into
    ``lp``.  A bottom context makes the requirement vacuous, as does a target
    that cancels to zero (``minus`` lets callers certify a difference without
    materializing it as a polynomial first).

    All coefficient matching goes through :class:`AffBuilder` accumulators —
    one per monomial — instead of repeated immutable polynomial sums; with
    hundreds of certificate products per containment this is the difference
    between linear and quadratic assembly cost.  With the symbolic kernel
    enabled the λ-multiplier columns come from the memoized
    :class:`CertificateBasis` and land in the builders via bulk
    ``dict.update`` calls over precomputed arrays.
    """
    if ctx.bottom:
        return
    # A polynomial mentions each monomial once, so the first pass can seed
    # the builders with C-level dict copies instead of per-term merges.
    target: dict[Monomial, AffBuilder] = {}
    for mono, coeff in poly.coeffs.items():
        if isinstance(coeff, AffForm):
            target[mono] = AffBuilder(dict(coeff.terms), coeff.const)
        else:
            target[mono] = AffBuilder(None, coeff)
    if minus is not None:
        for mono, coeff in minus.coeffs.items():
            builder = target.get(mono)
            if builder is not None:
                builder.add(coeff, scale=-1.0)
            elif isinstance(coeff, AffForm):
                target[mono] = AffBuilder(
                    {i: -c for i, c in coeff.terms.items()}, -coeff.const
                )
            else:
                target[mono] = AffBuilder(None, -coeff)
    if any(b.is_zero() for b in target.values()):
        target = {m: b for m, b in target.items() if not b.is_zero()}
    if not target:
        return
    if all(m.is_unit() and b.is_constant() for m, b in target.items()):
        const = sum(b.const for b in target.values())
        if const < -1e-9:
            raise ValueError(f"constant certificate target {const!r} is negative")
        return
    cert_degree = max(degree, max(m.degree for m in target))

    if kernel_enabled():
        basis = certificate_basis(ctx, cert_degree)
        # λ variables are allocated with the same names, in the same order,
        # as the legacy loop below — indices are contiguous from lam_base.
        lam_base = lp.fresh_nonneg(f"{label}.λ0").index
        for j in range(1, basis.n_products):
            lp.fresh_nonneg(f"{label}.λ{j}")
        # Emission hint for the LP reduction layer: this certificate's
        # multipliers occupy one contiguous column span, so presolve can
        # build its λ/nonnegativity masks from span arithmetic instead of
        # scanning the index set.
        lp.note_cert_span(lam_base, basis.n_products)
        for mono, rows, negs in basis.columns:
            builder = target.get(mono)
            if builder is None:
                target[mono] = builder = AffBuilder()
            # Fresh λ indices cannot collide with existing template terms,
            # so a bulk update preserves add_var semantics; ascending-j
            # order matches the legacy per-product scan.
            builder.terms.update(zip((rows + lam_base).tolist(), negs))
    else:
        products = certificate_products(ctx, cert_degree)
        lam_base = None
        for j, prod in enumerate(products):
            lam = lp.fresh_nonneg(f"{label}.λ{j}")
            if lam_base is None:
                lam_base = lam.index
            for mono, c in prod.coeffs.items():
                target.setdefault(mono, AffBuilder()).add_var(lam, -float(c))
        if lam_base is not None:
            lp.note_cert_span(lam_base, len(products))

    for mono, builder in target.items():
        lp.add_eq(builder, note=f"{label}[{mono!r}]")
