"""Handelman-style nonnegativity certificates ("rewrite functions").

To discharge ``Γ |= p >= 0`` for a *template* polynomial ``p`` (coefficients
affine in LP unknowns), the paper represents the slack as a conical
combination of products of the constraints of Γ (section 3.4: slack
polynomials as "conical combinations of expressions E in Γ", generalized to
products for polynomial templates — Handelman's Positivstellensatz).

:func:`certificate_products` enumerates the products ``g_{i1} * ... * g_{ik}``
of degree at most ``degree`` (including the empty product 1);
:func:`emit_nonneg_certificate` adds to an LP the fresh multipliers
``λ_j >= 0`` and the coefficient-matching equalities ``p == Σ λ_j prod_j``.
"""

from __future__ import annotations

import itertools

from repro.logic.context import Context
from repro.lp.affine import AffBuilder
from repro.lp.problem import LPProblem
from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial

#: Safety valve: contexts are small (a handful of constraints), but product
#: enumeration is combinatorial; certificates beyond this size indicate a
#: modelling problem rather than a precision need.
MAX_PRODUCTS = 2000


def certificate_products(ctx: Context, degree: int) -> list[Polynomial]:
    """All products of Γ-constraints with total degree <= ``degree``.

    The first element is always the constant polynomial 1 (the ``λ0`` term).
    Duplicate constraints are skipped.
    """
    products: list[Polynomial] = [Polynomial.constant(1.0)]
    if degree <= 0:
        return products
    base = [g.expr.to_polynomial() for g in ctx.ineqs]
    for size in range(1, degree + 1):
        for combo in itertools.combinations_with_replacement(range(len(base)), size):
            prod = Polynomial.constant(1.0)
            for i in combo:
                prod = prod * base[i]
            products.append(prod)
            if len(products) > MAX_PRODUCTS:
                raise ValueError(
                    f"Handelman certificate blow-up: more than {MAX_PRODUCTS} "
                    f"products for a context with {len(base)} constraints at "
                    f"degree {degree}"
                )
    return products


def emit_nonneg_certificate(
    lp: LPProblem,
    ctx: Context,
    poly: Polynomial,
    degree: int,
    label: str = "cert",
    minus: Polynomial | None = None,
) -> None:
    """Constrain ``poly - minus >= 0`` to hold under ``ctx`` (sufficient).

    Emits ``poly - minus == Σ_j λ_j prod_j`` with fresh ``λ_j >= 0`` into
    ``lp``.  A bottom context makes the requirement vacuous, as does a target
    that cancels to zero (``minus`` lets callers certify a difference without
    materializing it as a polynomial first).

    All coefficient matching goes through :class:`AffBuilder` accumulators —
    one per monomial — instead of repeated immutable polynomial sums; with
    hundreds of certificate products per containment this is the difference
    between linear and quadratic assembly cost.
    """
    if ctx.bottom:
        return
    target: dict[Monomial, AffBuilder] = {}
    for mono, coeff in poly.coeffs.items():
        target.setdefault(mono, AffBuilder()).add(coeff)
    if minus is not None:
        for mono, coeff in minus.coeffs.items():
            target.setdefault(mono, AffBuilder()).add(coeff, scale=-1.0)
    target = {m: b for m, b in target.items() if not b.is_zero()}
    if not target:
        return
    if all(m.is_unit() and b.is_constant() for m, b in target.items()):
        const = sum(b.const for b in target.values())
        if const < -1e-9:
            raise ValueError(f"constant certificate target {const!r} is negative")
        return
    cert_degree = max(degree, max(m.degree for m in target))
    products = certificate_products(ctx, cert_degree)
    for j, prod in enumerate(products):
        lam = lp.fresh_nonneg(f"{label}.λ{j}")
        for mono, c in prod.coeffs.items():
            target.setdefault(mono, AffBuilder()).add_var(lam, -float(c))
    for mono, builder in target.items():
        lp.add_eq(builder, note=f"{label}[{mono!r}]")
