"""Handelman-style nonnegativity certificates ("rewrite functions").

To discharge ``Γ |= p >= 0`` for a *template* polynomial ``p`` (coefficients
affine in LP unknowns), the paper represents the slack as a conical
combination of products of the constraints of Γ (section 3.4: slack
polynomials as "conical combinations of expressions E in Γ", generalized to
products for polynomial templates — Handelman's Positivstellensatz).

:func:`certificate_products` enumerates the products ``g_{i1} * ... * g_{ik}``
of degree at most ``degree`` (including the empty product 1);
:func:`emit_nonneg_certificate` adds to an LP the fresh multipliers
``λ_j >= 0`` and the coefficient-matching equalities ``p == Σ λ_j prod_j``.
"""

from __future__ import annotations

import itertools

from repro.logic.context import Context
from repro.lp.affine import AffForm
from repro.lp.problem import LPProblem
from repro.poly.polynomial import Polynomial

#: Safety valve: contexts are small (a handful of constraints), but product
#: enumeration is combinatorial; certificates beyond this size indicate a
#: modelling problem rather than a precision need.
MAX_PRODUCTS = 2000


def certificate_products(ctx: Context, degree: int) -> list[Polynomial]:
    """All products of Γ-constraints with total degree <= ``degree``.

    The first element is always the constant polynomial 1 (the ``λ0`` term).
    Duplicate constraints are skipped.
    """
    products: list[Polynomial] = [Polynomial.constant(1.0)]
    if degree <= 0:
        return products
    base = [g.expr.to_polynomial() for g in ctx.ineqs]
    for size in range(1, degree + 1):
        for combo in itertools.combinations_with_replacement(range(len(base)), size):
            prod = Polynomial.constant(1.0)
            for i in combo:
                prod = prod * base[i]
            products.append(prod)
            if len(products) > MAX_PRODUCTS:
                raise ValueError(
                    f"Handelman certificate blow-up: more than {MAX_PRODUCTS} "
                    f"products for a context with {len(base)} constraints at "
                    f"degree {degree}"
                )
    return products


def emit_nonneg_certificate(
    lp: LPProblem,
    ctx: Context,
    poly: Polynomial,
    degree: int,
    label: str = "cert",
) -> None:
    """Constrain ``poly >= 0`` to hold under ``ctx`` (sufficient condition).

    Emits ``poly == Σ_j λ_j prod_j`` with fresh ``λ_j >= 0`` into ``lp``.
    A bottom context makes the requirement vacuous.
    """
    if ctx.bottom or poly.is_zero():
        return
    if poly.is_constant() and poly.is_concrete():
        if float(poly.constant_value()) < -1e-9:
            raise ValueError(f"constant certificate target {poly!r} is negative")
        return
    cert_degree = max(degree, poly.degree())
    products = certificate_products(ctx, cert_degree)
    combination = Polynomial.zero()
    for j, prod in enumerate(products):
        lam = lp.fresh_nonneg(f"{label}.λ{j}")
        combination = combination + prod.map_coefficients(
            lambda c, lam=lam: AffForm.of_var(lam, float(c))
        )
    difference = poly - combination
    for mono, coeff in difference.coeffs.items():
        lp.add_eq(_as_aff(coeff), note=f"{label}[{mono!r}]")


def _as_aff(coeff) -> AffForm:
    if isinstance(coeff, AffForm):
        return coeff
    return AffForm.constant(float(coeff))
