"""Forward abstract interpretation computing logical contexts.

The derivation system consumes a logical context Γ at every weakening site
(branch joins, loop heads, call post-points, function entries).  The paper
obtains these with an interprocedural numeric analysis over APRON; we run a
forward fixpoint over :class:`repro.logic.context.Context` (conjunctions of
linear inequalities) with:

* exact strongest postconditions for linear assignments,
* support bounds for sampling,
* mutual-entailment joins at branch merges,
* loop invariants by decreasing iteration from a candidate set (entry facts
  plus user-annotated ``inv(...)`` conditions, each checked for entry
  validity and body preservation),
* call transfer by havocking the callee's transitive modset and meeting with
  the callee's exit context (computed by an outer fixpoint over the call
  graph; function pre-conditions are *checked* at call sites and reported).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import (
    Assign,
    Call,
    IfBranch,
    NondetBranch,
    ProbBranch,
    Program,
    Sample,
    Seq,
    Skip,
    Stmt,
    Tick,
    While,
)
from repro.lang.varinfo import ProgramInfo
from repro.logic.context import Context
from repro.logic.linear import cond_to_ineqs

_MAX_LOOP_ITERS = 8
_MAX_GLOBAL_ITERS = 3


@dataclass
class ContextMap:
    """Per-node logical contexts plus per-function summaries."""

    pre: dict[int, Context] = field(default_factory=dict)
    post: dict[int, Context] = field(default_factory=dict)
    loop_head: dict[int, Context] = field(default_factory=dict)
    fun_pre: dict[str, Context] = field(default_factory=dict)
    fun_exit: dict[str, Context] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    def pre_of(self, node: Stmt) -> Context:
        return self.pre.get(id(node), Context.top())

    def post_of(self, node: Stmt) -> Context:
        return self.post.get(id(node), Context.top())

    def head_of(self, node: While) -> Context:
        return self.loop_head.get(id(node), Context.top())


class _Analyzer:
    def __init__(self, program: Program, info: ProgramInfo):
        self.program = program
        self.info = info
        self.cmap = ContextMap()
        for name, fun in program.functions.items():
            self.cmap.fun_pre[name] = Context.of_conds(fun.pre, info.integer_vars)
            self.cmap.fun_exit[name] = Context.top(info.integer_vars)
        self._record = False

    # -- driver ------------------------------------------------------------------

    def run(self) -> ContextMap:
        for iteration in range(_MAX_GLOBAL_ITERS):
            changed = False
            for name in sorted(self.info.reachable):
                fun = self.program.fun(name)
                exit_ctx = self.transfer(fun.body, self.cmap.fun_pre[name])
                old = self.cmap.fun_exit[name]
                if repr(exit_ctx) != repr(old):
                    self.cmap.fun_exit[name] = exit_ctx
                    changed = True
            if not changed:
                break
        # Final recording pass with stable function summaries.
        self._record = True
        self.cmap.warnings.clear()
        for name in sorted(self.info.reachable):
            fun = self.program.fun(name)
            self.transfer(fun.body, self.cmap.fun_pre[name])
        return self.cmap

    # -- transfer ------------------------------------------------------------------

    def transfer(self, stmt: Stmt, ctx: Context) -> Context:
        if self._record:
            self.cmap.pre[id(stmt)] = ctx
        out = self._transfer(stmt, ctx)
        if self._record:
            self.cmap.post[id(stmt)] = out
        return out

    def _transfer(self, stmt: Stmt, ctx: Context) -> Context:
        if isinstance(stmt, (Skip, Tick)):
            return ctx
        if isinstance(stmt, Assign):
            return ctx.assign(stmt.var, stmt.expr)
        if isinstance(stmt, Sample):
            return ctx.sample(stmt.var, stmt.dist.support())
        if isinstance(stmt, Seq):
            for s in stmt.stmts:
                ctx = self.transfer(s, ctx)
            return ctx
        if isinstance(stmt, ProbBranch):
            left = self.transfer(stmt.then_branch, ctx)
            right = self.transfer(stmt.else_branch, ctx)
            if stmt.prob >= 1.0:
                return left
            if stmt.prob <= 0.0:
                return right
            return left.join(right)
        if isinstance(stmt, NondetBranch):
            left = self.transfer(stmt.left, ctx)
            right = self.transfer(stmt.right, ctx)
            return left.join(right)
        if isinstance(stmt, IfBranch):
            then_in = ctx.assume(stmt.cond)
            else_in = ctx.assume(stmt.cond.negate())
            left = self.transfer(stmt.then_branch, then_in)
            right = self.transfer(stmt.else_branch, else_in)
            return left.join(right)
        if isinstance(stmt, While):
            return self._transfer_while(stmt, ctx)
        if isinstance(stmt, Call):
            return self._transfer_call(stmt, ctx)
        raise TypeError(f"unknown statement {stmt!r}")

    def _transfer_while(self, stmt: While, ctx: Context) -> Context:
        candidates = list(ctx.ineqs)
        for cond in stmt.invariant:
            ineqs = cond_to_ineqs(cond, ctx.integer_vars)
            if ineqs is None:
                continue
            for g in ineqs:
                if ctx.entails(g):
                    if g not in candidates:
                        candidates.append(g)
                elif self._record:
                    self.cmap.warnings.append(
                        f"loop invariant {g!r} not entailed at loop entry; dropped"
                    )
        # Decreasing iteration: drop candidates the body does not preserve.
        record_state = self._record
        self._record = False
        try:
            for _ in range(_MAX_LOOP_ITERS):
                head = Context(tuple(candidates), False, ctx.integer_vars)
                body_in = head.assume(stmt.cond)
                body_out = self.transfer(stmt.body, body_in)
                stable = [g for g in candidates if body_out.entails(g)]
                if len(stable) == len(candidates):
                    break
                candidates = stable
        finally:
            self._record = record_state

        head = Context(tuple(candidates), False, ctx.integer_vars)
        if self._record:
            self.cmap.loop_head[id(stmt)] = head
            self.transfer(stmt.body, head.assume(stmt.cond))
        return head.assume(stmt.cond.negate())

    def _transfer_call(self, stmt: Call, ctx: Context) -> Context:
        callee_pre = self.cmap.fun_pre[stmt.func]
        if self._record and not ctx.entails_all(callee_pre.ineqs):
            self.cmap.warnings.append(
                f"call to {stmt.func!r}: pre-condition {callee_pre!r} "
                f"not entailed by call-site context {ctx!r}"
            )
        havocked = ctx.havoc(self.info.modset(stmt.func))
        return havocked.meet(self.cmap.fun_exit[stmt.func])


def compute_contexts(program: Program, info: ProgramInfo) -> ContextMap:
    """Run the interprocedural context analysis over all reachable functions."""
    return _Analyzer(program, info).run()
