"""Quickstart: analyze the paper's running example (Fig. 2).

Derives symbolic interval bounds on the raw moments of the ``tick`` cost
accumulator of a bounded, biased random walk, computes the variance bound
of Example 2.4, checks the Theorem 4.4 soundness side conditions, and
cross-validates everything against Monte-Carlo simulation.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalysisOptions,
    analyze,
    check_soundness,
    estimate_cost_statistics,
    parse_program,
)

RDWALK = """
func rdwalk() pre(x < d + 2) begin
  if x < d then
    t ~ uniform(-1, 2);
    x := x + t;
    call rdwalk;
    tick(1)
  fi
end

func main() pre(d > 0) begin
  x := 0;
  call rdwalk
end
"""


def main() -> None:
    program = parse_program(RDWALK)

    options = AnalysisOptions(
        moment_degree=2,       # bound E[tick] and E[tick^2]
        template_degree=1,     # k-th moment uses degree-k polynomials
        objective_valuations=({"d": 10.0, "x": 0.0, "t": 0.0},),
    )
    result = analyze(program, options)

    print("symbolic bounds (valid for every initial state with d > 0):")
    print(f"  E[tick]   in [{result.lower_str(1)}, {result.upper_str(1)}]")
    print(f"  E[tick^2] in [{result.lower_str(2)}, {result.upper_str(2)}]")

    valuation = {"d": 10.0, "x": 0.0, "t": 0.0}
    print("\nat d = 10:")
    print(f"  E[tick]   in {result.raw_interval(1, valuation)}")
    print(f"  E[tick^2] in {result.raw_interval(2, valuation)}")
    print(f"  V[tick]   in {result.variance(valuation)}   (paper: <= 22d + 28 = 248)")

    report = check_soundness(program, stopping_moment_degree=2)
    print(f"\n{report.summary()}")

    stats = estimate_cost_statistics(program, n=20_000, seed=1, initial={"d": 10.0})
    print("\nMonte-Carlo cross-check (20k runs):")
    print(f"  empirical E[tick]   = {stats.mean:.3f}")
    print(f"  empirical E[tick^2] = {stats.raw[2]:.3f}")
    print(f"  empirical V[tick]   = {stats.central[2]:.3f}")


if __name__ == "__main__":
    main()
