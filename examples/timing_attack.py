"""Timing-attack case study (Appendix I).

Models the DARPA STAC password checker's ``compare`` routine in Appl,
derives interval bounds on the mean and variance of its running time in
the two scenarios the attacker must distinguish, and bounds the success
probability of the threshold attack of Fig. 16(c) with Cantelli's
inequality.

Run:  python examples/timing_attack.py
"""

from repro import AnalysisOptions, analyze
from repro.programs import registry
from repro.tail.attack import analyze_attack, paper_t0_bounds, paper_t1_bounds


def main() -> None:
    t1_bench = registry.get("timing-t1")
    t0_bench = registry.get("timing-t0")

    t1 = analyze(
        t1_bench.parse(),
        AnalysisOptions(
            moment_degree=2,
            objective_valuations=(t1_bench.valuation,) + t1_bench.extra_valuations,
        ),
    )
    t0 = analyze(
        t0_bench.parse(),
        AnalysisOptions(
            moment_degree=2,
            objective_valuations=(t0_bench.valuation,) + t0_bench.extra_valuations,
        ),
    )

    print("derived timing models (i = bits to process, j = mismatch index):")
    print(f"  E[T1] in [{t1.lower_str(1)}, {t1.upper_str(1)}]  (paper: [13N, 15N])")
    print(f"  E[T0] in [{t0.lower_str(1)}, {t0.upper_str(1)}]  "
          "(paper: [13N-5j, 13N-3j])")
    print(f"  V[T1] at N=32:       {t1.variance({'i': 32.0}).hi:.0f}"
          "   (paper bound: 27968)")
    print(f"  V[T0] at N=32, j=16: {t0.variance({'i': 32.0, 'j': 16.0}).hi:.0f}"
          "   (paper bound: 18368)")

    def derived_t1(n, i):
        e = t1.raw_interval(1, {"i": n})
        return (e.lo, e.hi, t1.variance({"i": n}).hi)

    def derived_t0(n, i):
        e = t0.raw_interval(1, {"i": n, "j": i})
        return (e.lo, e.hi, t0.variance({"i": n, "j": i}).hi)

    ours = analyze_attack(bits=32, trials=10_000, t1_bounds=derived_t1,
                          t0_bounds=derived_t0)
    paper = analyze_attack(bits=32, trials=10_000, t1_bounds=paper_t1_bounds,
                           t0_bounds=paper_t0_bounds)

    print("\nattack success-rate lower bounds (N = 32 bits, K = 10^4 trials/bit):")
    print(f"  with the paper's bounds:  all bits {paper.success_rate(0):.4f}, "
          f"skip low 6 {paper.success_rate(6):.4f}")
    print(f"  with our derived bounds:  all bits {ours.success_rate(0):.4f}, "
          f"skip low 6 {ours.success_rate(6):.4f}")
    print(f"  total compare() calls with 6-bit brute force: "
          f"{ours.brute_force_calls(6):,}")
    print("\nverdict: the checker is exploitable — its random delays do not "
          "mask the per-bit timing gap.")


if __name__ == "__main__":
    main()
