"""Distribution shape from higher central moments (section 6, Tab. 2/Fig. 11).

Two random walks with the same expected runtime but different step laws:
variant 2 idles and rarely jumps by 4, so its runtime distribution is more
lopsided (skewness) and heavier-tailed (kurtosis).  The analysis sees this
purely from the derived moment bounds; simulation confirms it.

Run:  python examples/distribution_shape.py
"""

import numpy as np

from repro import AnalysisOptions, analyze
from repro.interp.mc import density_histogram, simulate_costs
from repro.programs import registry


def main() -> None:
    print(f"{'variant':<14} {'E[T] bound':>10} {'skew(bound)':>12} "
          f"{'kurt(bound)':>12} {'skew(MC)':>9} {'kurt(MC)':>9}")
    samples = {}
    for name in ("rdwalk-var1", "rdwalk-var2"):
        bench = registry.get(name)
        result = analyze(
            bench.parse(),
            AnalysisOptions(
                moment_degree=4,
                objective_valuations=(bench.valuation,),
            ),
        )
        costs = simulate_costs(bench.parse(), 20_000, seed=7, initial=bench.sim_init)
        samples[name] = costs
        mean, var = float(np.mean(costs)), float(np.var(costs))
        skew_mc = float(np.mean((costs - mean) ** 3)) / var**1.5
        kurt_mc = float(np.mean((costs - mean) ** 4)) / var**2
        print(
            f"{name:<14} {result.raw_interval(1, bench.valuation).hi:>10.2f} "
            f"{result.skewness_upper(bench.valuation):>12.2f} "
            f"{result.kurtosis_upper(bench.valuation):>12.2f} "
            f"{skew_mc:>9.2f} {kurt_mc:>9.2f}"
        )

    print("\nruntime density estimates (Fig. 11), ASCII:")
    for name, costs in samples.items():
        print(f"-- {name}")
        mids, dens = density_histogram(costs, bins=18)
        scale = 50.0 / max(dens)
        for m, v in zip(mids, dens):
            print(f"{m:>8.1f} | " + "#" * int(round(v * scale)))


if __name__ == "__main__":
    main()
