"""Tail-bound analysis (section 5 / Fig. 1(c)).

Compares three upper bounds on the tail probability P[tick >= 4d] of the
running example: Markov from the first raw moment (expected-cost analyses,
[31]/[43]), Markov from the second raw moment (Kura et al. [26]), and
Cantelli from the variance — which needs the *interval* (upper and lower)
moment bounds this analysis derives.

Run:  python examples/tail_bounds.py
"""

from repro import AnalysisOptions, analyze, parse_program
from repro.tail.bounds import cantelli_upper_tail, markov_tail

from quickstart import RDWALK


def main() -> None:
    program = parse_program(RDWALK)
    result = analyze(
        program,
        AnalysisOptions(
            moment_degree=2,
            objective_valuations=(
                {"d": 10.0, "x": 0.0, "t": 0.0},
                {"d": 500.0, "x": 0.0, "t": 0.0},
            ),
        ),
    )

    print("P[tick >= 4d] upper bounds (Fig. 1(c)):")
    print(f"{'d':>6} {'Markov deg 1':>14} {'Markov deg 2':>14} {'Cantelli':>14}")
    for d in (10, 20, 30, 40, 60, 80, 160):
        val = {"d": float(d), "x": 0.0, "t": 0.0}
        e1 = result.raw_interval(1, val)
        e2 = result.raw_interval(2, val)
        var = result.variance(val)
        threshold = 4.0 * d
        print(
            f"{d:>6}"
            f" {markov_tail(e1.hi, 1, threshold):>14.4f}"
            f" {markov_tail(e2.hi, 2, threshold):>14.4f}"
            f" {cantelli_upper_tail(var.hi, e1.hi, threshold):>14.4f}"
        )
    print(
        "\nMarkov bounds converge to 1/2 and 1/4; the Cantelli bound from the"
        "\ncentral moment tends to 0 — the paper's headline comparison."
    )


if __name__ == "__main__":
    main()
