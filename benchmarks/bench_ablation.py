"""Ablations for the design choices called out in DESIGN.md section 5.

* lexicographic vs. single-blob objective,
* template degree (linear templates cannot certify quadratic behaviour),
* interval (two-sided) analysis vs. upper-only mode for tail bounds,
* moment-polymorphic recursion: levels beyond 0 are what make non-tail
  recursion analyzable at higher moments.
"""

import pytest

from _harness import emit, fmt, run_registered
from repro import AnalysisOptions, LPError, analyze
from repro.programs import registry
from repro.tail.bounds import cantelli_upper_tail, markov_tail

VAL = {"d": 10.0, "x": 0.0, "t": 0.0}


def test_ablation_lexicographic_objective(benchmark):
    lex = benchmark.pedantic(
        lambda: run_registered("rdwalk"), rounds=1, iterations=1
    )
    blob = run_registered("rdwalk", lexicographic=False)
    lines = [
        "Ablation: lexicographic vs. summed objective (rdwalk, d=10)",
        f"  lexicographic: E <= {fmt(lex.raw_interval(1, VAL).hi)}, "
        f"E2 <= {fmt(lex.raw_interval(2, VAL).hi)}",
        f"  summed:        E <= {fmt(blob.raw_interval(1, VAL).hi)}, "
        f"E2 <= {fmt(blob.raw_interval(2, VAL).hi)}",
    ]
    emit("ablation_objective", lines)
    # Lexicographic never loses on the first moment.
    assert lex.raw_interval(1, VAL).hi <= blob.raw_interval(1, VAL).hi + 1e-6


def test_ablation_template_degree(benchmark):
    """Quadratic programs need degree-2 first-moment templates."""
    bench = registry.get("absynth-rdbub")
    quadratic = benchmark.pedantic(
        lambda: run_registered("absynth-rdbub"), rounds=1, iterations=1
    )
    assert quadratic.raw_interval(1, bench.valuation).hi == pytest.approx(
        192.0, rel=1e-3
    )
    with pytest.raises(LPError):
        analyze(
            registry.parsed("absynth-rdbub"),
            AnalysisOptions(
                moment_degree=1,
                template_degree=1,  # linear template: no 3n^2 potential
                objective_valuations=(bench.valuation,),
            ),
        )
    emit(
        "ablation_degree",
        [
            "Ablation: template degree on rdbub (true cost 3n^2)",
            "  degree 2: bound 3n^2 found;  degree 1: LP infeasible (as expected)",
        ],
    )


def test_ablation_interval_vs_upper_only(benchmark):
    """Tail-bound payoff of the interval analysis (the paper's headline)."""
    full = benchmark.pedantic(
        lambda: run_registered("rdwalk"), rounds=1, iterations=1
    )
    raw_only = run_registered("rdwalk", upper_only=True)
    d = 40.0
    val = {"d": d, "x": 0.0, "t": 0.0}
    threshold = 4 * d
    markov = markov_tail(raw_only.raw_interval(2, val).hi, 2, threshold)
    cantelli = cantelli_upper_tail(
        full.variance(val).hi, full.raw_interval(1, val).hi, threshold
    )
    emit(
        "ablation_interval",
        [
            "Ablation: tail bound P[tick >= 4d] at d = 40",
            f"  upper-only raw moments + Markov:   {markov:.4f}",
            f"  interval analysis + Cantelli:      {cantelli:.4f}",
        ],
    )
    assert cantelli < markov


def test_ablation_moment_polymorphic_recursion(benchmark):
    """Non-tail recursion at m = 2 exercises spec levels 0..2; the bound on
    the second moment must match the monomorphically-unreachable Fig. 3
    value (4d^2 + 22d + 28)."""
    result = benchmark.pedantic(
        lambda: run_registered("rdwalk"), rounds=1, iterations=1
    )
    spec = result.functions["rdwalk"]
    # The level summaries realize the elimination sequence of Ex. 2.6:
    # level-2 spec is cost-insensitive (pre == post on the 2nd component).
    level2 = spec.pres[2].intervals[2].hi
    post2 = spec.posts[2].intervals[2].hi
    val = {"d": 10.0, "x": 0.0, "t": 0.0}
    assert level2.evaluate(val) == pytest.approx(post2.evaluate(val), rel=1e-4)
    assert result.raw_interval(2, VAL).hi == pytest.approx(648.0, rel=1e-3)
    emit(
        "ablation_polymorphic",
        [
            "Ablation: moment-polymorphic recursion on rdwalk",
            "  level-2 spec is a fixpoint on the 2nd component "
            "(the <0,0,2> -> <0,0,2> step of Ex. 2.6)",
            f"  E[tick^2] <= {result.upper_str(2)} (Fig. 3: 4(d-x)^2+22(d-x)+28)",
        ],
    )
