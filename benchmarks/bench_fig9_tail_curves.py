"""Figs. 9/15: tail-probability curves for the Kura suite.

For each program, the upper bound on ``P[T >= d]`` over a threshold grid,
from (a) the best Markov bound over raw moments up to degree 4 — the Kura
et al. [26] methodology — and (b) Cantelli with the 2nd central moment and
Chebyshev with the 4th central moment (this work).  The paper's headline:
the central-moment curves dominate for large d.
"""

import pytest

from _harness import emit, run_registered
from repro.interp.mc import estimate_cost_statistics
from repro.programs import registry
from repro.programs.kura import KURA_NAMES
from repro.tail.bounds import best_upper_tail

SIM_RUNS = 20_000


@pytest.fixture(scope="module")
def results():
    return {name: run_registered(name) for name in KURA_NAMES}


@pytest.fixture(scope="module")
def simulations():
    """Empirical ground truth from the vectorized Monte-Carlo engine; the
    stored sample array backs ``CostStatistics.tail_probability``."""
    return {
        name: estimate_cost_statistics(
            registry.parsed(name),
            n=SIM_RUNS,
            seed=41,
            initial=registry.get(name).sim_init,
            engine="vectorized",
        )
        for name in KURA_NAMES
    }


def _curve(result, valuation, thresholds):
    raw = [result.raw_interval(k, valuation) for k in range(5)]
    central = {
        2: result.variance(valuation),
        4: result.central_interval(4, valuation),
    }
    rows = []
    for d in thresholds:
        bounds = best_upper_tail(raw, central, float(d))
        markov_best = min(bounds.markov.values())
        rows.append((d, markov_best, bounds.cantelli, bounds.chebyshev[4]))
    return rows


def test_fig9_curves(benchmark, results, simulations):
    benchmark.pedantic(
        lambda: _curve(
            results["kura-2-1"], registry.get("kura-2-1").valuation, range(40, 400, 20)
        ),
        rounds=3,
        iterations=1,
    )
    lines = ["Fig. 9/15: P[T >= d] upper bounds per program (MC = empirical)"]
    wins = 0
    comparisons = 0
    for name in KURA_NAMES:
        bench = registry.get(name)
        result = results[name]
        stats = simulations[name]
        mean_hi = result.raw_interval(1, bench.valuation).hi
        thresholds = [round(mean_hi * f) for f in (1.5, 2.0, 3.0, 5.0, 8.0)]
        lines.append(f"-- {name} (E[T] <= {mean_hi:.4g})")
        lines.append(
            f"{'d':>8} {'Markov(deg<=4)':>15} {'Cantelli(2nd)':>14} "
            f"{'Chebyshev(4th)':>15} {'MC':>9}"
        )
        for d, markov, cantelli, chebyshev in _curve(
            result, bench.valuation, thresholds
        ):
            empirical = stats.tail_probability(float(d))
            lines.append(
                f"{d:>8} {markov:>15.5f} {cantelli:>14.5f} {chebyshev:>15.5f} "
                f"{empirical:>9.5f}"
            )
            comparisons += 1
            if min(cantelli, chebyshev) <= markov + 1e-12:
                wins += 1
            # Soundness of every curve: an upper bound on P[T >= d] must
            # dominate the empirical tail up to binomial sampling error
            # (kura-2-3 resolves its demonic choices randomly; the bounds
            # hold for every resolution).
            margin = 5.0 * (empirical * (1 - empirical) / SIM_RUNS) ** 0.5 + 1e-3
            for bound in (markov, cantelli, chebyshev):
                assert bound >= empirical - margin, (name, d, bound, empirical)
    lines.append(
        f"central-moment bounds at least as tight on {wins}/{comparisons} grid points"
    )
    emit("fig9_tail_curves", lines)
    # The curves cross (exactly as in the paper's plots); the claim is that
    # central moments win in the tail — checked per-program below and in
    # test_fig9_large_threshold_dominance.
    assert wins >= comparisons * 0.3
    # Paper: "outperforms the prior work on (1-1) and (1-2)" — strict wins
    # already at moderate thresholds.
    for name in ("kura-1-1", "kura-1-2"):
        bench = registry.get(name)
        result = results[name]
        mean_hi = result.raw_interval(1, bench.valuation).hi
        ((_, markov, cantelli, chebyshev),) = _curve(
            result, bench.valuation, [3.0 * mean_hi]
        )
        assert min(cantelli, chebyshev) < markov, name


def test_fig9_large_threshold_dominance(results):
    """Asymptotics of the central-moment bounds, far in the tail.

    * Cantelli ~ V/d^2 always beats Markov-deg-1 ~ E/d eventually.
    * When the first-moment *lower* bound is informative (E_lo > 0), the
      variance bound is strictly below E[T^2], so Cantelli also beats
      Markov-deg-2; likewise Chebyshev-4th vs Markov-4th when the central
      4th-moment bound is below the raw one.  (Wide lower intervals —
      the conjunctive-guard 2D walks — inflate the central intervals via
      interval dependency and void that advantage; the paper's Fig. 9 has
      the same qualitative split between programs.)"""
    for name in KURA_NAMES:
        bench = registry.get(name)
        result = results[name]
        mean = result.raw_interval(1, bench.valuation)
        raw = [result.raw_interval(k, bench.valuation) for k in range(5)]
        central = {
            2: result.variance(bench.valuation),
            4: result.central_interval(4, bench.valuation),
        }
        bounds = best_upper_tail(raw, central, 1000.0 * mean.hi)
        assert bounds.cantelli <= bounds.markov[1] + 1e-12, name
        if mean.lo > 0:
            assert bounds.cantelli <= bounds.markov[2] + 1e-12, name
        if central[4].hi < raw[4].hi:
            assert bounds.chebyshev[4] <= bounds.markov[4] + 1e-12, name
