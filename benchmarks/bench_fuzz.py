"""Fuzzing-campaign throughput: a durable sharded sweep end to end.

One small-but-real campaign runs through the whole crash-safe pipeline —
shard jobs on the SQLite/WAL queue, a 2-process worker fleet, exactly-once
case claims, coverage bucketing, report assembly — and the wall clock for
the complete sweep is recorded.  This is the cost of *durable* fuzzing:
the same seeds via plain :func:`~repro.soundness.differential.run_differential`
would skip the queue, the ledger, and the dedupe claims entirely.

The numbers go to ``BENCH_fuzz.json`` at the repo root; CI gates
``campaign_total_seconds`` against the committed record via the
consolidated regression gate (with a wide threshold — the fleet is
poll-granular and the runner has 2 cores).  Acceptance: every seed is
accounted for exactly once and throughput stays above
``FLOOR_CASES_PER_SECOND``.
"""

import json
import pathlib
import tempfile
import time

from _harness import emit
from repro.soundness.campaign import (
    CampaignConfig,
    run_campaign,
    start_campaign,
)

RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_fuzz.json"

CONFIG = CampaignConfig(
    seed_start=0,
    seed_count=24,
    shard_size=4,
    samples=400,
    max_steps=80_000,
    deadline_seconds=None,
)
WORKERS = 2
#: Throughput floor, not a target: catches "campaigns got pathologically
#: slow", not scheduler noise.  Locally this runs at >8 cases/s.
FLOOR_CASES_PER_SECOND = 0.5


def _campaign_pass():
    with tempfile.TemporaryDirectory() as tmp:
        db = pathlib.Path(tmp) / "queue.db"
        start_campaign(db, "bench", CONFIG, pathlib.Path(tmp) / "campaign")
        start = time.perf_counter()
        report = run_campaign(
            db, "bench", workers=WORKERS, visibility=30.0, wave_timeout=600.0
        )
        elapsed = time.perf_counter() - start
    return elapsed, report


def test_campaign_throughput(benchmark):
    total, report = benchmark.pedantic(_campaign_pass, rounds=1, iterations=1)

    assert report.complete, report.summary()
    assert report.checked == CONFIG.seed_count
    assert report.tallies["quarantined"] == 0
    cases_per_second = report.checked / total

    lines = [
        f"fuzzing-campaign benchmark ({CONFIG.seed_count} seeds, "
        f"{CONFIG.shard_count} shards, {WORKERS} workers)",
        f"{'total (s)':>12} {'cases/s':>9} {'buckets':>8} {'verified':>9}",
        f"{total:>12.3f} {cases_per_second:>9.2f} "
        f"{len(report.buckets):>8} {report.tallies['verified']:>9}",
    ]
    emit("fuzz_campaign", lines)

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": f"{CONFIG.seed_count} fuzz seeds in "
                f"{CONFIG.shard_count} durable shards",
                "workers": WORKERS,
                "campaign_total_seconds": round(total, 4),
                "cases_per_second": round(cases_per_second, 4),
                "coverage_buckets": len(report.buckets),
                "tallies": dict(report.tallies),
                "floor_cases_per_second": FLOOR_CASES_PER_SECOND,
            },
            indent=2,
        )
        + "\n"
    )

    assert cases_per_second > FLOOR_CASES_PER_SECOND, (
        f"campaign throughput {cases_per_second:.2f} cases/s fell below the "
        f"{FLOOR_CASES_PER_SECOND} floor ({total:.3f}s for "
        f"{report.checked} cases)"
    )
