"""Appendix I: the timing-attack case study, end to end.

1. Analyze the two `compare` scenario models for E and V bounds.
2. Plug the *derived* bounds (and, for reference, the paper's (13)/(14))
   into the Cantelli-based attack success-rate computation.
3. Reproduce the verdict: the checker is exploitable — success rate for all
   but the low bits is high, with ~260k calls.
"""

import pytest

from _harness import emit, fmt, run_registered
from repro.tail.attack import analyze_attack, paper_t0_bounds, paper_t1_bounds


@pytest.fixture(scope="module")
def scenario_results():
    t1 = run_registered("timing-t1")
    t0 = run_registered("timing-t0")
    return t1, t0


def _derived_bounds(t1, t0):
    def t1_bounds(n, i):
        val = {"i": n, "j": 0.0}
        e = t1.raw_interval(1, val)
        v = t1.variance(val)
        return (e.lo, e.hi, v.hi)

    def t0_bounds(n, i):
        val = {"i": n, "j": i}
        e = t0.raw_interval(1, val)
        v = t0.variance(val)
        return (e.lo, e.hi, v.hi)

    return t1_bounds, t0_bounds


def test_scenario_moment_bounds(benchmark, scenario_results):
    t1, t0 = scenario_results
    benchmark.pedantic(
        lambda: run_registered("timing-t1"), rounds=1, iterations=1
    )
    n32 = {"i": 32.0, "j": 0.0}
    lines = [
        "Appendix I: compare() timing models (N = 32)",
        f"  E[T1] in {t1.raw_interval(1, {'i': 32.0})}   (paper: [13N, 15N] = [416, 480])",
        f"  V[T1] <= {fmt(t1.variance({'i': 32.0}).hi)}   (paper: 26N^2+42N = 27968)",
        f"  E[T0] in {t0.raw_interval(1, {'i': 32.0, 'j': 16.0})}  at j=16 "
        "(paper: [13N-5j, 13N-3j] = [336, 368])",
        f"  V[T0] <= {fmt(t0.variance({'i': 32.0, 'j': 16.0}).hi)}   "
        "(paper: 8N-36j^2+52Nj+24j = 18368)",
        f"  symbolic: E[T1] <= {t1.upper_str(1)},  E[T0] <= {t0.upper_str(1)}",
    ]
    emit("timing_scenarios", lines)
    e1 = t1.raw_interval(1, {"i": 32.0})
    assert e1.lo == pytest.approx(13 * 32, abs=0.5)
    assert e1.hi <= 15 * 32
    e0 = t0.raw_interval(1, {"i": 32.0, "j": 16.0})
    assert 13 * 32 - 5 * 16 - 0.5 <= e0.lo and e0.hi <= 13 * 32 - 3 * 16


def test_attack_success_rates(benchmark, scenario_results):
    t1, t0 = scenario_results
    derived_t1, derived_t0 = _derived_bounds(t1, t0)
    ours = benchmark.pedantic(
        lambda: analyze_attack(32, 10_000, derived_t1, derived_t0),
        rounds=1,
        iterations=1,
    )
    paper = analyze_attack(32, 10_000, paper_t1_bounds, paper_t0_bounds)
    lines = [
        "Appendix I: attack success-rate lower bounds (N = 32, K = 10^4)",
        f"{'bounds':<16} {'all 32 bits':>12} {'skip low 6':>12} {'calls':>8}",
        f"{'paper (13)/(14)':<16} {paper.success_rate(0):>12.6f} "
        f"{paper.success_rate(6):>12.6f} {paper.brute_force_calls(6):>8}",
        f"{'our derived':<16} {ours.success_rate(0):>12.6f} "
        f"{ours.success_rate(6):>12.6f} {ours.brute_force_calls(6):>8}",
        "paper reports: 0.219413 (all bits), 0.830561 (skip 6), 260064 calls",
    ]
    emit("timing_attack", lines)
    # Paper-formula reproduction.
    assert paper.success_rate(0) == pytest.approx(0.219413, abs=1e-4)
    # Our tighter variance bounds give a *higher* certified success rate —
    # the vulnerability verdict is the same but stronger.
    assert ours.success_rate(0) >= paper.success_rate(0)
    assert ours.success_rate(6) > 0.9
