"""Tables 1 and 4: raw and central moment upper bounds for the Kura suite.

For each of the seven programs: upper bounds on the 2nd/3rd/4th raw moments
and the 2nd/4th central moments of the runtime cost, plus analysis time,
side by side with the values Kura et al. [26] and the paper report.  The
(1-1) and (2-1) rows are exact reproductions (the published numbers pin the
cost models down; see repro/programs/kura.py); the others follow the
published feature mix with reconstructed constants.
"""

import pytest

from _harness import emit, fmt, run_registered
from repro.programs import registry
from repro.programs.kura import KURA_NAMES


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in KURA_NAMES:
        out[name] = run_registered(name)
    return out


def test_table1_moment_bounds(benchmark, results):
    benchmark.pedantic(
        lambda: run_registered("kura-2-1"), rounds=3, iterations=1
    )
    lines = [
        "Table 1/4: moment upper bounds (this work vs. paper-reported)",
        f"{'program':<10} {'moment':<12} {'measured':>14} {'paper':>14} {'time(s)':>8}",
    ]
    for name in KURA_NAMES:
        bench = registry.get(name)
        result = results[name]
        val = bench.valuation
        rows = [
            ("2nd raw", result.raw_interval(2, val).hi, bench.paper.get("2nd raw")),
            ("3rd raw", result.raw_interval(3, val).hi, bench.paper.get("3rd raw")),
            ("4th raw", result.raw_interval(4, val).hi, bench.paper.get("4th raw")),
            ("2nd central", result.variance(val).hi, bench.paper.get("2nd central")),
            (
                "4th central",
                result.central_interval(4, val).hi,
                bench.paper.get("4th central"),
            ),
        ]
        for label, measured, paper in rows:
            lines.append(
                f"{name:<10} {label:<12} {fmt(measured):>14} "
                f"{fmt(float(paper)):>14} {result.solve_seconds:>8.3f}"
            )
    emit("table1_moments", lines)

    # Exactness regressions for the identified rows.
    assert results["kura-1-1"].raw_interval(2, {"c": 0.0}).hi == pytest.approx(201.0)
    assert results["kura-2-1"].variance({"x": 1.0, "t": 0.0}).hi == pytest.approx(
        1920.0, rel=1e-4
    )


def test_table1_central_leq_raw(results):
    """Central moments are always far below the same-order raw moments."""
    for name in KURA_NAMES:
        bench = registry.get(name)
        result = results[name]
        val = bench.valuation
        assert result.variance(val).hi <= result.raw_interval(2, val).hi + 1e-6
        assert (
            result.central_interval(4, val).hi
            <= result.raw_interval(4, val).hi + 1e-6
        )


def test_symbolic_variance_bounds(benchmark):
    """Section 6's symbolic table: V <= 1920x for (2-1) under x >= 0."""
    result = benchmark.pedantic(
        lambda: run_registered(
            "kura-2-1",
            moment_degree=2,
            objective_valuations=({"x": 1.0, "t": 0.0}, {"x": 9.0, "t": 0.0}),
        ),
        rounds=1,
        iterations=1,
    )
    lines = ["Section 6 symbolic variance (pre x >= 0):"]
    for x in (1.0, 5.0, 9.0):
        var = result.variance({"x": x, "t": 0.0})
        lines.append(f"  x = {x:g}: V <= {fmt(var.hi)} (paper: 1920x = {1920 * x:g})")
        assert var.hi == pytest.approx(1920.0 * x, rel=1e-3)
    emit("table_symbolic_variance", lines)


def test_simulation_brackets_bounds(results):
    """Every inferred interval must bracket the Monte-Carlo estimate."""
    from repro.interp.mc import estimate_cost_statistics

    for name in ("kura-1-1", "kura-1-2", "kura-2-1", "kura-2-2"):
        bench = registry.get(name)
        stats = estimate_cost_statistics(
            registry.parsed(name), n=3000, seed=17, initial=bench.sim_init
        )
        result = results[name]
        for k in (1, 2):
            interval = result.raw_interval(k, bench.valuation)
            slack = 0.1 * abs(stats.raw[k]) + 1.0
            assert interval.lo - slack <= stats.raw[k] <= interval.hi + slack, (
                name,
                k,
                stats.raw[k],
                interval,
            )
