"""Cold vs. warm analysis through the content-addressed artifact cache.

The fig10 scalability workload (coupon chains, chained random walks) is
analyzed twice against one disk cache directory:

* **cold** — empty cache: every stage is derived and solved, artifacts are
  written;
* **warm** — a *new session*: freshly parsed programs, fresh
  :class:`~repro.service.cache.ArtifactCache` instances with empty memory
  LRUs, so every hit must come from disk, exactly as a second process or a
  restarted ``repro serve`` would see it.

The numbers go to ``BENCH_cache.json`` at the repo root (uploaded as a CI
artifact next to the LP-assembly record).  Acceptance: warm re-analysis of
the whole workload is at least 3x faster than cold.
"""

import json
import pathlib
import tempfile
import time

from _harness import emit
from repro import AnalysisOptions, AnalysisPipeline, ArtifactCache
from repro.programs.synthetic import coupon_chain, rdwalk_chain

RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_cache.json"

WORKLOAD = {
    "coupon_chain(4)": lambda: coupon_chain(4),
    "coupon_chain(8)": lambda: coupon_chain(8),
    "coupon_chain(16)": lambda: coupon_chain(16),
    "rdwalk_chain(2)": lambda: rdwalk_chain(2),
}

MOMENT_DEGREE = 4
SPEEDUP_FLOOR = 3.0


def _run_workload(cache_dir: str) -> dict[str, float]:
    """One full pass; a fresh ArtifactCache per program mimics separate
    sessions sharing the directory (no in-memory carry-over)."""
    times = {}
    for name, make in WORKLOAD.items():
        program = make()
        cache = ArtifactCache(cache_dir)
        start = time.perf_counter()
        AnalysisPipeline(program, artifacts=cache).analyze(
            AnalysisOptions(moment_degree=MOMENT_DEGREE)
        )
        times[name] = time.perf_counter() - start
    return times


def test_cache_cold_vs_warm(benchmark):
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = benchmark.pedantic(
            lambda: _run_workload(cache_dir), rounds=1, iterations=1
        )
        warm = _run_workload(cache_dir)

    cold_total = sum(cold.values())
    warm_total = sum(warm.values())
    speedup = cold_total / warm_total if warm_total else float("inf")

    lines = [
        f"artifact-cache benchmark ({MOMENT_DEGREE}th-moment fig10 workload)",
        f"{'case':>18} {'cold (s)':>9} {'warm (s)':>9} {'speedup':>8}",
    ]
    for name in WORKLOAD:
        ratio = cold[name] / warm[name] if warm[name] else float("inf")
        lines.append(
            f"{name:>18} {cold[name]:>9.3f} {warm[name]:>9.3f} {ratio:>7.1f}x"
        )
    lines.append(
        f"{'total':>18} {cold_total:>9.3f} {warm_total:>9.3f} {speedup:>7.1f}x"
    )
    emit("cache_cold_warm", lines)

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": f"fig10 programs at moment degree {MOMENT_DEGREE}",
                "cold_seconds": {k: round(v, 4) for k, v in cold.items()},
                "warm_seconds": {k: round(v, 4) for k, v in warm.items()},
                "cold_total_seconds": round(cold_total, 4),
                "warm_total_seconds": round(warm_total, 4),
                "warm_speedup": round(speedup, 2),
                "speedup_floor": SPEEDUP_FLOOR,
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"disk-cache-hit re-analysis only {speedup:.1f}x faster than cold "
        f"(cold {cold_total:.3f}s, warm {warm_total:.3f}s); floor is "
        f"{SPEEDUP_FLOOR}x"
    )


def test_cache_hits_come_from_disk():
    """The warm pass must be *disk* hits (fresh memory LRU), and results
    must be the very artifacts the cold pass produced."""
    with tempfile.TemporaryDirectory() as cache_dir:
        program = coupon_chain(4)
        cold_cache = ArtifactCache(cache_dir)
        cold = AnalysisPipeline(program, artifacts=cold_cache).analyze(
            AnalysisOptions(moment_degree=MOMENT_DEGREE)
        )
        warm_cache = ArtifactCache(cache_dir)
        warm = AnalysisPipeline(coupon_chain(4), artifacts=warm_cache).analyze(
            AnalysisOptions(moment_degree=MOMENT_DEGREE)
        )
        assert warm_cache.stats.disk_hits >= 1
        assert warm_cache.stats.misses == 0
        assert warm.summary() == cold.summary()
