"""LP solve-layer benchmark: presolve + blocks + warm lex + worker pool.

Times ``solve_and_resolve`` — everything after constraint derivation:
the lexicographic LP solve loop plus bound resolution — on the Fig. 10
scalability programs at moment degree 4, the workload whose stage split
motivated the LP reduction layer (after PR 4 vectorized derivation, ~80%
of analysis wall time sat in the solve loop; see ``BENCH_constraints.json``
``stage_split_rdwalk_chain_2``).  Four configurations:

* ``reduced``  — the default path (``REPRO_DISABLE_LP_REDUCE`` unset):
  presolve over the row buffers, connected-component block models,
  per-block lexicographic pins;
* ``direct``   — the kill-switch path: the raw system handed to the
  warm-started incremental backend (the PR-4 solve path, unchanged);
* ``parallel`` — the reduced path with block solves dispatched over the
  process-parallel worker pool (:mod:`repro.lp.parallel`) at 1, 2, 4 and
  8 workers — the worker-scaling curve;
* ``seed``     — hardcoded PR-4 timings (commit ``609d83e``) from the
  machine grid this file was introduced on; the acceptance metric is
  ``seed_total / reduced_total >= 2`` on that machine, with a
  ``direct_total / reduced_total >= 1.5`` floor as the hardware-portable
  proxy (mirroring ``bench_constraint_derivation``).

The parallel speedup target (>= 2.5x at 4+ workers) is asserted only on
machines with at least 4 CPU cores: block solves are CPU-bound, so on a
1-2 core box the pool can only add IPC overhead and the curve records
that honestly instead of faking a ratio.  The curve itself (and the
``parallel_solve_total_seconds`` key CI gates) is recorded on any
hardware.

``rdwalk_chain(3)`` at moment degree 4 is the degenerate-template
instance: its 4th-moment stage objective rides a ray of the certificate
polytope that only the variable box stops, and HiGHS cannot certify the
solve under the default ±1e12 box on any path.  The analyzer now solves
it on the default (reduced) path by restarting the lexicographic solve
under tighter coefficient boxes (the ``lp_restart_bound`` ladder; a
restricted certificate family is still a sound certificate family).  The
bench asserts the default path *solves* it and times that solve; the
kill-switch path still fails — per-block pins and presolve are what make
the tighter boxes certifiable — and its outcome is recorded in the JSON
rather than hidden.  The instance stays out of the speedup ratio (the
seed analyzer could not solve it at all).

The stacked-batch section times the same-shape block stacking on the
three registry programs whose certificate systems decompose into >= 3
same-shape blocks (``absynth-c4b_t13``, ``absynth-condand``,
``absynth-rdseql``): the default stacked path vs the per-block path
(stacking suppressed), with the group sizes recorded.

Every measured round derives the constraint system in the (untimed) setup
and times ``pipeline.analyze`` on the primed pipeline, so the number is the
solve-and-resolve cost one ``analyze`` call pays after derivation.  Rounds
run via :func:`_harness.timed_median`; the recorded time is the best of k
(noise is additive; the median rides along in the JSON).  Results land in
``BENCH_solve.json`` (CI gates ``solve_total_seconds`` and
``parallel_solve_total_seconds`` against the committed baseline) together
with the LP shape stats recorded from the reduction layer itself.
"""

import json
import os
import pathlib

from _harness import emit, timed_median
from repro import AnalysisOptions, AnalysisPipeline
from repro.lp import reduce as lp_reduce
from repro.lp.parallel import shutdown_pool
from repro.lp.reduce import reduce_override
from repro.programs import registry
from repro.programs.synthetic import coupon_chain, rdwalk_chain

RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_solve.json"

#: ``solve_and_resolve`` seconds of the PR-4 analyzer (commit 609d83e,
#: reduction layer absent) on this benchmark grid at moment degree 4,
#: measured on the machine this file was introduced on.
SEED_SECONDS = {
    "coupon_chain(4)": 0.030,
    "coupon_chain(8)": 0.140,
    "coupon_chain(16)": 0.540,
    "rdwalk_chain(2)": 0.290,
}

WORKLOAD = {
    "coupon_chain(4)": lambda: coupon_chain(4),
    "coupon_chain(8)": lambda: coupon_chain(8),
    "coupon_chain(16)": lambda: coupon_chain(16),
    "rdwalk_chain(2)": lambda: rdwalk_chain(2),
}

#: Degenerate-template instance: solved via the restart ladder on the
#: default path, timed separately, never part of the speedup ratio.
RESTART_INSTANCE = ("rdwalk_chain(3)", lambda: rdwalk_chain(3))

#: Registry programs whose certificate LPs contain a >= 3-member group of
#: same-shape blocks (the stacking trigger).
STACKED_WORKLOAD = ("absynth-c4b_t13", "absynth-condand", "absynth-rdseql")

#: Worker counts of the scaling curve.
PARALLEL_JOBS = (1, 2, 4, 8)

MOMENT_DEGREE = 4
ROUNDS = 5
WARMUP = 1


def _solve_seconds(make, reduced: bool, lp_jobs: "int | None" = None,
                   options: AnalysisOptions | None = None):
    """Best-of-k solve+resolve time with the reduction layer forced on/off.

    Derivation (stages 1-3) is primed in the untimed per-round setup; a
    fresh pipeline per round keeps the solution caches cold, so each round
    measures one full lexicographic solve plus resolution.  The recorded
    number is the *minimum* of the measured rounds: scheduler noise is
    strictly additive, so the minimum is the tightest estimate of the true
    cost (the median rides the noise and is recorded alongside).
    """
    state: dict = {}
    if options is None:
        options = AnalysisOptions(moment_degree=MOMENT_DEGREE, lp_jobs=lp_jobs)

    def setup():
        pipe = AnalysisPipeline(make())
        pipe.constraint_system(options)
        state["pipe"] = pipe

    def run():
        with reduce_override(reduced):
            state["pipe"].analyze(options)

    median, times = timed_median(run, rounds=ROUNDS, warmup=WARMUP, setup=setup)
    # Shape stats from the last measured round's reducer (reduced runs only).
    shape = state["pipe"].constraint_system(options).lp.reduction_stats(
        include_times=False
    )
    return min(times), median, shape


def _restart_outcome(make, reduced: bool) -> dict:
    """One full analysis of the degenerate instance on the given path."""
    import time

    options = AnalysisOptions(moment_degree=MOMENT_DEGREE)
    pipe = AnalysisPipeline(make())
    pipe.constraint_system(options)
    started = time.perf_counter()
    with reduce_override(reduced):
        try:
            result = pipe.analyze(options)
        except Exception as exc:
            return {
                "outcome": type(exc).__name__,
                "seconds": round(time.perf_counter() - started, 3),
            }
    return {
        "outcome": "solved",
        "seconds": round(time.perf_counter() - started, 3),
        "restart_bound": result.lp_restart_bound,
        "first_moment": [
            result.raw_interval(1).lo, result.raw_interval(1).hi,
        ],
    }


def _registry_options(name: str) -> AnalysisOptions:
    bench = registry.get(name)
    return AnalysisOptions(
        moment_degree=bench.moment_degree,
        template_degree=bench.template_degree,
        degree_cap=bench.degree_cap,
        objective_valuations=(bench.valuation,) + tuple(bench.extra_valuations),
    )


def test_solve_layer(benchmark):
    benchmark.pedantic(
        lambda: _solve_seconds(WORKLOAD["coupon_chain(4)"], True),
        rounds=1, iterations=1,
    )
    reduced: dict[str, float] = {}
    direct: dict[str, float] = {}
    reduced_median: dict[str, float] = {}
    direct_median: dict[str, float] = {}
    shapes: dict[str, dict] = {}
    for name, make in WORKLOAD.items():
        reduced[name], reduced_median[name], shapes[name] = _solve_seconds(make, True)
        direct[name], direct_median[name], _ = _solve_seconds(make, False)

    # Worker-scaling curve: the same reduced workload, block solves
    # dispatched at 1/2/4/8 workers (jobs=1 is the sequential in-process
    # path — the IPC-free baseline of the curve).
    scaling: dict[int, float] = {}
    for jobs in PARALLEL_JOBS:
        total = 0.0
        for name, make in WORKLOAD.items():
            best, _, _ = _solve_seconds(make, True, lp_jobs=jobs)
            total += best
        scaling[jobs] = total
    shutdown_pool()

    # Degenerate-template instance: the default path must now solve it
    # (template-restart ladder); the kill-switch path's outcome is
    # recorded, not asserted — it has no per-block pins to certify under.
    restart_name, restart_make = RESTART_INSTANCE
    restart = {
        "reduced": _restart_outcome(restart_make, True),
        "direct": _restart_outcome(restart_make, False),
    }

    # Stacked same-shape batches vs one model per block.
    stacked: dict[str, dict] = {}
    for name in STACKED_WORKLOAD:
        options = _registry_options(name)
        make = lambda n=name: registry.parsed(n)
        on_best, _, on_shape = _solve_seconds(make, True, options=options)
        saved_min = lp_reduce._STACK_MIN_BLOCKS
        lp_reduce._STACK_MIN_BLOCKS = 10**9  # suppress stacking
        try:
            off_best, _, _ = _solve_seconds(make, True, options=options)
        finally:
            lp_reduce._STACK_MIN_BLOCKS = saved_min
        stacked[name] = {
            "stacked_seconds": round(on_best, 4),
            "per_block_seconds": round(off_best, 4),
            "stacked_sizes": on_shape["stacked_sizes"],
        }

    reduced_total = sum(reduced.values())
    direct_total = sum(direct.values())
    seed_total = sum(SEED_SECONDS.values())
    speedup_vs_seed = seed_total / reduced_total
    speedup_vs_direct = direct_total / reduced_total
    cores = os.cpu_count() or 1
    best_jobs = min(scaling, key=scaling.get)
    parallel_speedup = scaling[1] / scaling[best_jobs]

    lines = [
        f"LP solve-layer benchmark ({MOMENT_DEGREE}th-moment fig10 workload, "
        "solve_and_resolve only)",
        f"{'case':>18} {'seed (s)':>9} {'direct (s)':>11} {'reduced (s)':>12} "
        f"{'cols':>12} {'rows':>12} {'blocks':>7}",
    ]
    for name in WORKLOAD:
        shape = shapes[name]
        lines.append(
            f"{name:>18} {SEED_SECONDS[name]:>9.3f} {direct[name]:>11.3f} "
            f"{reduced[name]:>12.3f} "
            f"{shape['cols']:>5}->{shape['reduced_cols']:<5} "
            f"{shape['rows']:>5}->{shape['reduced_rows']:<5} "
            f"{shape['components']:>7}"
        )
    lines.append(
        f"{'total':>18} {seed_total:>9.3f} {direct_total:>11.3f} "
        f"{reduced_total:>12.3f}"
    )
    lines.append(
        f"speedup: {speedup_vs_seed:.2f}x vs seed, "
        f"{speedup_vs_direct:.2f}x vs reduction-off"
    )
    lines.append(
        "worker scaling ("
        + f"{cores} cores): "
        + ", ".join(f"{j} jobs: {scaling[j]:.3f}s" for j in PARALLEL_JOBS)
        + f" — best {scaling[1] / scaling[best_jobs]:.2f}x at {best_jobs}"
    )
    lines.append(
        f"{restart_name}: degenerate 4th-moment template — reduced: "
        f"{restart['reduced']['outcome']} in {restart['reduced']['seconds']}s "
        f"(restart bound {restart['reduced'].get('restart_bound')}), direct: "
        f"{restart['direct']['outcome']} (excluded from the ratio; see "
        "module docstring)"
    )
    for name, entry in stacked.items():
        lines.append(
            f"{name}: stacked {entry['stacked_seconds']}s vs per-block "
            f"{entry['per_block_seconds']}s (group sizes "
            f"{entry['stacked_sizes']})"
        )
    emit("solve_layer", lines)

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": f"fig10 programs at moment degree {MOMENT_DEGREE}, "
                "solve_and_resolve only (derivation primed per round)",
                "seed_commit": "609d83e",
                "rounds": ROUNDS,
                "warmup": WARMUP,
                "timing": "min of rounds (median alongside), fresh "
                "pipeline per round",
                "cpu_cores": cores,
                "seed_seconds": SEED_SECONDS,
                "direct_seconds": {k: round(v, 4) for k, v in direct.items()},
                "reduced_seconds": {k: round(v, 4) for k, v in reduced.items()},
                "direct_median_seconds": {
                    k: round(v, 4) for k, v in direct_median.items()
                },
                "reduced_median_seconds": {
                    k: round(v, 4) for k, v in reduced_median.items()
                },
                "lp_shapes": shapes,
                "seed_total_seconds": round(seed_total, 4),
                "direct_total_seconds": round(direct_total, 4),
                "solve_total_seconds": round(reduced_total, 4),
                "speedup_vs_seed": round(speedup_vs_seed, 3),
                "speedup_vs_direct": round(speedup_vs_direct, 3),
                "parallel_scaling_seconds": {
                    str(j): round(scaling[j], 4) for j in PARALLEL_JOBS
                },
                "parallel_solve_total_seconds": round(scaling[4], 4),
                "parallel_best_jobs": best_jobs,
                "parallel_speedup": round(parallel_speedup, 3),
                "restart_instance": {restart_name: restart},
                "stacked_batches": stacked,
            },
            indent=2,
        )
        + "\n"
    )

    # The analyzer must solve the degenerate instance on its default path
    # (template-restart ladder; PR 6).  The kill-switch path has no
    # per-block pins, so its outcome is recorded but not constrained.
    assert restart["reduced"]["outcome"] == "solved", restart

    # Acceptance: >= 2x solve_and_resolve speedup vs the PR-4 analyzer on
    # this workload.  The recorded seed timings are from the machine this
    # file was introduced on; on other hardware the kill-switch path —
    # identical to PR-4's solve loop — is the proxy, with a floor the
    # reduction must beat.
    assert speedup_vs_seed >= 2.0 or speedup_vs_direct >= 1.5, (
        f"solve-layer speedup below the floor: {speedup_vs_seed:.2f}x vs seed "
        f"(seed {seed_total:.3f}s), {speedup_vs_direct:.2f}x vs reduction-off "
        f"(direct {direct_total:.3f}s, reduced {reduced_total:.3f}s)"
    )

    # Parallel acceptance (>= 2.5x at 4+ workers) only where the hardware
    # can express it: block solves are CPU-bound, so with < 4 cores the
    # curve records the IPC overhead honestly instead of faking a ratio.
    if cores >= 4:
        best_4plus = min(scaling[j] for j in PARALLEL_JOBS if j >= 4)
        assert scaling[1] / best_4plus >= 2.5, (
            f"parallel scaling below 2.5x on {cores} cores: "
            + ", ".join(f"{j}: {scaling[j]:.3f}s" for j in PARALLEL_JOBS)
        )


def test_reduction_shrinks_the_solved_core():
    """Shape sanity independent of wall time: presolve must eliminate a
    substantial share of columns and rows on the certificate systems."""
    options = AnalysisOptions(moment_degree=MOMENT_DEGREE)
    pipe = AnalysisPipeline(rdwalk_chain(2))
    with reduce_override(True):
        pipe.analyze(options)
    stats = pipe.constraint_system(options).lp.reduction_stats()
    assert stats["reduced_cols"] <= 0.5 * stats["cols"]
    assert stats["reduced_rows"] <= 0.5 * stats["rows"]
    assert stats["components"] >= 2
