"""LP solve-layer benchmark: presolve + block decomposition + warm lex.

Times ``solve_and_resolve`` — everything after constraint derivation:
the lexicographic LP solve loop plus bound resolution — on the Fig. 10
scalability programs at moment degree 4, the workload whose stage split
motivated the LP reduction layer (after PR 4 vectorized derivation, ~80%
of analysis wall time sat in the solve loop; see ``BENCH_constraints.json``
``stage_split_rdwalk_chain_2``).  Three configurations:

* ``reduced``  — the default path (``REPRO_DISABLE_LP_REDUCE`` unset):
  presolve over the row buffers, connected-component block models,
  per-block lexicographic pins;
* ``direct``   — the kill-switch path: the raw system handed to the
  warm-started incremental backend (the PR-4 solve path, unchanged);
* ``seed``     — hardcoded PR-4 timings (commit ``609d83e``) from the
  machine grid this file was introduced on; the acceptance metric is
  ``seed_total / reduced_total >= 2`` on that machine, with a
  ``direct_total / reduced_total >= 1.5`` floor as the hardware-portable
  proxy (mirroring ``bench_constraint_derivation``).

``rdwalk_chain(3)`` at moment degree 4 is recorded separately: its
4th-moment template is degenerate (the stage objective rides a ray that
only the ±1e12 variable box stops) and HiGHS cannot certify it on *any*
path — the PR-4 baseline raises ``LPError`` on it, as does every solver
configuration tried (plain/regularized/boxed rungs, dual/primal simplex,
IPM, with and without the reduction).  The bench asserts both paths agree
on that outcome and excludes it from the speedup ratio; its entry in the
JSON documents the failure rather than hiding the program.

Every measured round derives the constraint system in the (untimed) setup
and times ``pipeline.analyze`` on the primed pipeline, so the number is the
solve-and-resolve cost one ``analyze`` call pays after derivation.  Rounds
run via :func:`_harness.timed_median`; the recorded time is the best of k
(noise is additive; the median rides along in the JSON).  Results land in
``BENCH_solve.json`` (CI gates ``solve_total_seconds`` against the
committed baseline) together with the LP shape stats — rows/cols/nnz before
and after reduction, eliminated-column counts by rule, component sizes —
recorded from the reduction layer itself.
"""

import json
import pathlib

from _harness import emit, timed_median
from repro import AnalysisOptions, AnalysisPipeline
from repro.lp.reduce import reduce_override
from repro.programs.synthetic import coupon_chain, rdwalk_chain

RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_solve.json"

#: ``solve_and_resolve`` seconds of the PR-4 analyzer (commit 609d83e,
#: reduction layer absent) on this benchmark grid at moment degree 4,
#: measured on the machine this file was introduced on.
SEED_SECONDS = {
    "coupon_chain(4)": 0.030,
    "coupon_chain(8)": 0.140,
    "coupon_chain(16)": 0.540,
    "rdwalk_chain(2)": 0.290,
}

WORKLOAD = {
    "coupon_chain(4)": lambda: coupon_chain(4),
    "coupon_chain(8)": lambda: coupon_chain(8),
    "coupon_chain(16)": lambda: coupon_chain(16),
    "rdwalk_chain(2)": lambda: rdwalk_chain(2),
}

#: Degenerate-template instance: recorded, never part of the ratio.
DEGENERATE = {"rdwalk_chain(3)": lambda: rdwalk_chain(3)}

MOMENT_DEGREE = 4
ROUNDS = 5
WARMUP = 1


def _solve_seconds(make, reduced: bool):
    """Best-of-k solve+resolve time with the reduction layer forced on/off.

    Derivation (stages 1-3) is primed in the untimed per-round setup; a
    fresh pipeline per round keeps the solution caches cold, so each round
    measures one full lexicographic solve plus resolution.  The recorded
    number is the *minimum* of the measured rounds: scheduler noise is
    strictly additive, so the minimum is the tightest estimate of the true
    cost (the median rides the noise and is recorded alongside).
    """
    state: dict = {}
    options = AnalysisOptions(moment_degree=MOMENT_DEGREE)

    def setup():
        pipe = AnalysisPipeline(make())
        pipe.constraint_system(options)
        state["pipe"] = pipe

    def run():
        with reduce_override(reduced):
            state["pipe"].analyze(options)

    median, times = timed_median(run, rounds=ROUNDS, warmup=WARMUP, setup=setup)
    # Shape stats from the last measured round's reducer (reduced runs only).
    shape = state["pipe"].constraint_system(options).lp.reduction_stats(
        include_times=False
    )
    return min(times), median, shape


def _degenerate_outcome(make) -> str:
    options = AnalysisOptions(moment_degree=MOMENT_DEGREE)
    pipe = AnalysisPipeline(make())
    pipe.constraint_system(options)
    try:
        pipe.analyze(options)
        return "solved"
    except Exception as exc:
        return type(exc).__name__


def test_solve_layer(benchmark):
    benchmark.pedantic(
        lambda: _solve_seconds(WORKLOAD["coupon_chain(4)"], True),
        rounds=1, iterations=1,
    )
    reduced: dict[str, float] = {}
    direct: dict[str, float] = {}
    reduced_median: dict[str, float] = {}
    direct_median: dict[str, float] = {}
    shapes: dict[str, dict] = {}
    for name, make in WORKLOAD.items():
        reduced[name], reduced_median[name], shapes[name] = _solve_seconds(make, True)
        direct[name], direct_median[name], _ = _solve_seconds(make, False)

    degenerate = {}
    for name, make in DEGENERATE.items():
        with reduce_override(False):
            off_outcome = _degenerate_outcome(make)
        with reduce_override(True):
            on_outcome = _degenerate_outcome(make)
        degenerate[name] = {"direct": off_outcome, "reduced": on_outcome}

    reduced_total = sum(reduced.values())
    direct_total = sum(direct.values())
    seed_total = sum(SEED_SECONDS.values())
    speedup_vs_seed = seed_total / reduced_total
    speedup_vs_direct = direct_total / reduced_total

    lines = [
        f"LP solve-layer benchmark ({MOMENT_DEGREE}th-moment fig10 workload, "
        "solve_and_resolve only)",
        f"{'case':>18} {'seed (s)':>9} {'direct (s)':>11} {'reduced (s)':>12} "
        f"{'cols':>12} {'rows':>12} {'blocks':>7}",
    ]
    for name in WORKLOAD:
        shape = shapes[name]
        lines.append(
            f"{name:>18} {SEED_SECONDS[name]:>9.3f} {direct[name]:>11.3f} "
            f"{reduced[name]:>12.3f} "
            f"{shape['cols']:>5}->{shape['reduced_cols']:<5} "
            f"{shape['rows']:>5}->{shape['reduced_rows']:<5} "
            f"{shape['components']:>7}"
        )
    lines.append(
        f"{'total':>18} {seed_total:>9.3f} {direct_total:>11.3f} "
        f"{reduced_total:>12.3f}"
    )
    lines.append(
        f"speedup: {speedup_vs_seed:.2f}x vs seed, "
        f"{speedup_vs_direct:.2f}x vs reduction-off"
    )
    for name, outcome in degenerate.items():
        lines.append(
            f"{name}: degenerate 4th-moment template — direct: "
            f"{outcome['direct']}, reduced: {outcome['reduced']} "
            "(excluded from the ratio; see module docstring)"
        )
    emit("solve_layer", lines)

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": f"fig10 programs at moment degree {MOMENT_DEGREE}, "
                "solve_and_resolve only (derivation primed per round)",
                "seed_commit": "609d83e",
                "rounds": ROUNDS,
                "warmup": WARMUP,
                "timing": "min of rounds (median alongside), fresh "
                "pipeline per round",
                "seed_seconds": SEED_SECONDS,
                "direct_seconds": {k: round(v, 4) for k, v in direct.items()},
                "reduced_seconds": {k: round(v, 4) for k, v in reduced.items()},
                "direct_median_seconds": {
                    k: round(v, 4) for k, v in direct_median.items()
                },
                "reduced_median_seconds": {
                    k: round(v, 4) for k, v in reduced_median.items()
                },
                "lp_shapes": shapes,
                "seed_total_seconds": round(seed_total, 4),
                "direct_total_seconds": round(direct_total, 4),
                "solve_total_seconds": round(reduced_total, 4),
                "speedup_vs_seed": round(speedup_vs_seed, 3),
                "speedup_vs_direct": round(speedup_vs_direct, 3),
                "degenerate_instances": degenerate,
            },
            indent=2,
        )
        + "\n"
    )

    # Both paths must agree on the degenerate instance's outcome (the
    # reduction layer may not turn a solver failure into silent garbage, nor
    # break a program the direct path solves).
    for name, outcome in degenerate.items():
        assert (outcome["direct"] == "solved") == (outcome["reduced"] == "solved"), (
            name, outcome,
        )

    # Acceptance: >= 2x solve_and_resolve speedup vs the PR-4 analyzer on
    # this workload.  The recorded seed timings are from the machine this
    # file was introduced on; on other hardware the kill-switch path —
    # identical to PR-4's solve loop — is the proxy, with a floor the
    # reduction must beat.
    assert speedup_vs_seed >= 2.0 or speedup_vs_direct >= 1.5, (
        f"solve-layer speedup below the floor: {speedup_vs_seed:.2f}x vs seed "
        f"(seed {seed_total:.3f}s), {speedup_vs_direct:.2f}x vs reduction-off "
        f"(direct {direct_total:.3f}s, reduced {reduced_total:.3f}s)"
    )


def test_reduction_shrinks_the_solved_core():
    """Shape sanity independent of wall time: presolve must eliminate a
    substantial share of columns and rows on the certificate systems."""
    options = AnalysisOptions(moment_degree=MOMENT_DEGREE)
    pipe = AnalysisPipeline(rdwalk_chain(2))
    with reduce_override(True):
        pipe.analyze(options)
    stats = pipe.constraint_system(options).lp.reduction_stats()
    assert stats["reduced_cols"] <= 0.5 * stats["cols"]
    assert stats["reduced_rows"] <= 0.5 * stats["rows"]
    assert stats["components"] >= 2
