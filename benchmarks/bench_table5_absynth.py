"""Table 5: expected-cost upper bounds vs. Absynth (Ngo et al. [31]).

Symbolic polynomial upper bounds on monotone expected costs, fully
automatically, across the Absynth suite subset.  Where the construction is
pinned (ber, hyper, linear01, sprdwalk, geo, cowboy_duel, fcall, rdseql,
c4b_t13, c4b_t30, condand, trapped_miner, rdbub, ...) the bound must match
the published closed form on concrete instances.
"""

import pytest

from _harness import emit, fmt, run_registered
from repro.programs import registry
from repro.programs.absynth import ABSYNTH_NAMES

#: name -> (paper closed form as a python lambda over the valuation, rel tol)
PINNED = {
    "absynth-ber": (lambda v: 2 * (v["n"] - v["x"]), 1e-4),
    "absynth-sprdwalk": (lambda v: 2 * (v["n"] - v["x"]), 1e-4),
    "absynth-hyper": (lambda v: 5 * (v["n"] - v["x"]), 1e-4),
    "absynth-linear01": (lambda v: 0.6 * v["x"], 1e-4),
    "absynth-geo": (lambda v: 5.0, 1e-4),
    "absynth-cowboy_duel": (lambda v: 1.2, 1e-4),
    "absynth-fcall": (lambda v: 2 * (v["n"] - v["x"]), 1e-4),
    "absynth-rdseql": (lambda v: 2.25 * v["x"] + v["y"], 1e-4),
    "absynth-c4b_t13": (lambda v: 1.25 * v["x"] + v["y"], 1e-4),
    "absynth-condand": (lambda v: 2 * v["m"], 1e-4),
    "absynth-rfind_lv": (lambda v: 2.0, 1e-4),
    "absynth-trapped_miner": (lambda v: 7.5 * v["n"], 1e-4),
    "absynth-rdbub": (lambda v: 3 * v["n"] ** 2, 1e-3),
}


def test_table5_absynth_suite(benchmark):
    benchmark.pedantic(
        lambda: run_registered("absynth-ber"), rounds=3, iterations=1
    )
    lines = [
        "Table 5: expected-cost upper bounds (monotone costs)",
        f"{'program':<24} {'measured':>10} {'time(s)':>8}  symbolic (paper's formula)",
    ]
    failures = []
    for name in ABSYNTH_NAMES:
        bench = registry.get(name)
        result = run_registered(name)
        upper = result.raw_interval(1, bench.valuation).hi
        lines.append(
            f"{name:<24} {fmt(upper):>10} {result.solve_seconds:>8.3f}  "
            f"{result.upper_str(1)}   ({bench.paper['bound']})"
        )
        if name in PINNED:
            formula, tol = PINNED[name]
            expected = formula(bench.valuation)
            if abs(upper - expected) > tol * max(1.0, abs(expected)):
                failures.append((name, upper, expected))
    emit("table5_absynth", lines)
    assert not failures, failures


@pytest.mark.parametrize("name", ABSYNTH_NAMES)
def test_table5_bounds_bracket_simulation(benchmark, name):
    from repro.interp.mc import estimate_cost_statistics

    bench = registry.get(name)
    result = benchmark.pedantic(
        lambda: run_registered(name), rounds=1, iterations=1
    )
    stats = estimate_cost_statistics(
        registry.parsed(name), n=1200, seed=31, initial=bench.sim_init
    )
    interval = result.raw_interval(1, bench.valuation)
    slack = 0.12 * abs(stats.mean) + 0.5
    assert stats.mean <= interval.hi + slack, (name, stats.mean, interval)
    assert stats.mean >= interval.lo - slack, (name, stats.mean, interval)
