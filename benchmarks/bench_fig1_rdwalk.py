"""Fig. 1(b) and Fig. 1(c): the running example's bounds and tail bounds.

Regenerates the moment-bound table (raw first/second moments and the
variance of ``tick`` for the Fig. 2 random walk) and the three tail-bound
curves ``P[tick >= 4d]``: Markov from the degree-1 raw moment ([31, 43]),
Markov from the degree-2 raw moment ([26]), and Cantelli from the variance
(this work).
"""

import pytest

from _harness import emit, fmt, run_registered
from repro.tail.bounds import cantelli_upper_tail, markov_tail

VAL = {"d": 10.0, "x": 0.0, "t": 0.0}


@pytest.fixture(scope="module")
def rdwalk_result():
    return run_registered(
        "rdwalk", objective_valuations=(VAL, {"d": 500.0, "x": 0.0, "t": 0.0})
    )


def test_fig1b_moment_bounds(benchmark, rdwalk_result):
    result = benchmark.pedantic(
        lambda: run_registered("rdwalk"), rounds=1, iterations=1
    )
    lines = [
        "Fig. 1(b): moment bounds for rdwalk's tick accumulator",
        f"  derived  E[tick]   <= {result.upper_str(1)}   (paper: 2d + 4)",
        f"  derived  E[tick]   >= {result.lower_str(1)}   (paper Fig. 7: 2(d-x))",
        f"  derived  E[tick^2] <= {result.upper_str(2)}   (paper: 4d^2 + 22d + 28)",
    ]
    var = result.variance(VAL)
    lines.append(
        f"  V[tick] at d=10: {fmt(var.hi)}   (paper: 22d + 28 = 248)"
    )
    emit("fig1b_rdwalk_bounds", lines)
    assert var.hi == pytest.approx(248.0, rel=1e-3)


def test_fig1c_tail_bounds(rdwalk_result):
    lines = [
        "Fig. 1(c): P[tick >= 4d] upper bounds",
        f"{'d':>6} {'Markov deg1':>12} {'Markov deg2':>12} {'Cantelli':>12}",
    ]
    crossover = None
    for d in range(10, 81, 5):
        val = {"d": float(d), "x": 0.0, "t": 0.0}
        e1 = rdwalk_result.raw_interval(1, val)
        e2 = rdwalk_result.raw_interval(2, val)
        var = rdwalk_result.variance(val)
        threshold = 4.0 * d
        m1 = markov_tail(e1.hi, 1, threshold)
        m2 = markov_tail(e2.hi, 2, threshold)
        cant = cantelli_upper_tail(var.hi, e1.hi, threshold)
        lines.append(f"{d:>6} {m1:>12.4f} {m2:>12.4f} {cant:>12.4f}")
        if crossover is None and cant < min(m1, m2):
            crossover = d
    lines.append(
        f"  central-moment bound becomes the most precise at d = {crossover} "
        "(paper: d >= 15)"
    )
    emit("fig1c_rdwalk_tails", lines)
    assert crossover is not None and crossover <= 20
