"""Durable-queue batch overhead: the worker fleet vs. direct analysis.

The same cold workload is run twice:

* **direct** — sequential in-process analysis, one fresh
  :class:`~repro.service.cache.ArtifactCache` per program (the floor: what
  the work itself costs);
* **queue** — ``run_batch(..., executor="queue")``: every program becomes a
  durable row in a temp SQLite :class:`~repro.service.store.JobStore`,
  drained by a 2-process :class:`~repro.service.jobs.WorkerPool` through a
  shared disk cache, results read back from acked rows.

The delta is the full price of durability — enqueue transactions, lease
polling, process startup, result JSON round-trips.  The numbers go to
``BENCH_queue.json`` at the repo root; CI gates
``queue_batch_total_seconds`` against the committed record via the
consolidated regression gate.  Acceptance: per-job queue overhead stays
under ``OVERHEAD_CEILING_SECONDS``.
"""

import json
import pathlib
import tempfile
import time

from _harness import emit
from repro import AnalysisOptions, AnalysisPipeline, ArtifactCache
from repro.programs.synthetic import coupon_chain, rdwalk_chain
from repro.service.executor import run_batch

RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_queue.json"

WORKLOAD = {
    "coupon_chain(2)": lambda: coupon_chain(2),
    "coupon_chain(4)": lambda: coupon_chain(4),
    "coupon_chain(6)": lambda: coupon_chain(6),
    "rdwalk_chain(1)": lambda: rdwalk_chain(1),
    "rdwalk_chain(2)": lambda: rdwalk_chain(2),
}

MOMENT_DEGREE = 2
WORKERS = 2
#: Generous on purpose: the gate must catch "the queue got pathologically
#: slower", not CI scheduler noise on a 2-core runner.
OVERHEAD_CEILING_SECONDS = 2.5


def _direct_pass() -> float:
    start = time.perf_counter()
    for make in WORKLOAD.values():
        AnalysisPipeline(make(), artifacts=None).analyze(
            AnalysisOptions(moment_degree=MOMENT_DEGREE)
        )
    return time.perf_counter() - start


def _queue_pass() -> tuple[float, object]:
    programs = {name: make() for name, make in WORKLOAD.items()}
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        report = run_batch(
            programs,
            options=AnalysisOptions(moment_degree=MOMENT_DEGREE),
            executor="queue",
            jobs=WORKERS,
            cache=ArtifactCache(cache_dir),
        )
        elapsed = time.perf_counter() - start
    return elapsed, report


def test_queue_batch_overhead(benchmark):
    direct_total = _direct_pass()
    queue_total, report = benchmark.pedantic(_queue_pass, rounds=1, iterations=1)

    assert report.ok, [item.error for item in report.items if not item.ok]
    assert all(item.job_id is not None for item in report.items)
    jobs = len(WORKLOAD)
    overhead = queue_total - direct_total
    per_job = overhead / jobs

    lines = [
        f"queue-batch benchmark ({jobs} programs at moment degree "
        f"{MOMENT_DEGREE}, {WORKERS} workers)",
        f"{'pass':>8} {'total (s)':>10}",
        f"{'direct':>8} {direct_total:>10.3f}",
        f"{'queue':>8} {queue_total:>10.3f}",
        f"per-job durability overhead: {per_job:.3f}s "
        f"(ceiling {OVERHEAD_CEILING_SECONDS}s)",
    ]
    emit("queue_batch", lines)

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": f"{jobs} synthetic programs at moment degree "
                f"{MOMENT_DEGREE}",
                "workers": WORKERS,
                "direct_total_seconds": round(direct_total, 4),
                "queue_batch_total_seconds": round(queue_total, 4),
                "per_job_overhead_seconds": round(per_job, 4),
                "overhead_ceiling_seconds": OVERHEAD_CEILING_SECONDS,
            },
            indent=2,
        )
        + "\n"
    )

    assert per_job < OVERHEAD_CEILING_SECONDS, (
        f"durable-queue overhead {per_job:.3f}s/job exceeds the "
        f"{OVERHEAD_CEILING_SECONDS}s ceiling (direct {direct_total:.3f}s, "
        f"queue {queue_total:.3f}s for {jobs} jobs)"
    )
