"""Table 3: expected-runtime upper bounds for the Kura suite (degree 1)."""

import pytest

from _harness import emit, fmt, run_registered
from repro.programs import registry
from repro.programs.kura import KURA_NAMES


def test_table3_expected_runtimes(benchmark):
    benchmark.pedantic(
        lambda: run_registered("kura-1-1", moment_degree=1), rounds=1, iterations=1
    )
    lines = [
        "Table 3: upper bounds on E[T] (this work vs. paper-reported values)",
        f"{'program':<10} {'measured':>10} {'paper':>10} {'time(s)':>9}  symbolic",
    ]
    for name in KURA_NAMES:
        bench = registry.get(name)
        result = run_registered(name, moment_degree=1)
        upper = result.raw_interval(1, bench.valuation).hi
        paper = bench.paper.get("E")
        lines.append(
            f"{name:<10} {fmt(upper):>10} {fmt(float(paper)):>10} "
            f"{result.solve_seconds:>9.3f}  {result.upper_str(1)}"
        )
        assert upper < float("inf")
    emit("table3_expected_runtime", lines)


def test_table3_exact_rows(benchmark):
    """(1-1) and (2-1) reproduce the published 13 / 20 exactly."""
    r11 = benchmark.pedantic(
        lambda: run_registered("kura-1-1", moment_degree=1), rounds=1, iterations=1
    )
    assert r11.raw_interval(1, {"c": 0.0}).hi == pytest.approx(13.0, rel=1e-6)
    r21 = run_registered("kura-2-1", moment_degree=1)
    assert r21.raw_interval(1, {"x": 1.0, "t": 0.0}).hi == pytest.approx(20.0, rel=1e-6)
