"""Benchmark regression gate: fail CI when a fresh record is too slow.

Compares one numeric key of a freshly produced ``BENCH_*.json`` against the
committed baseline and exits non-zero when the fresh value exceeds the
baseline by more than ``--threshold`` (a slowdown; getting faster never
fails).  Usage in CI::

    git show HEAD:BENCH_lp_assembly.json > baseline.json   # committed record
    pytest benchmarks/bench_lp_assembly.py                 # writes the fresh one
    python benchmarks/check_regression.py baseline.json BENCH_lp_assembly.json \
        --key incremental_total_seconds --threshold 0.25
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed benchmark record (JSON)")
    parser.add_argument("fresh", help="freshly produced benchmark record (JSON)")
    parser.add_argument(
        "--key", default="incremental_total_seconds",
        help="numeric field to compare (default: total wall time of the "
        "incremental backend)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="maximum tolerated relative slowdown (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)

    try:
        base_value = float(baseline[args.key])
        fresh_value = float(fresh[args.key])
    except KeyError as missing:
        print(f"regression gate: key {missing} absent from a record", file=sys.stderr)
        return 2
    if base_value <= 0:
        print(f"regression gate: baseline {args.key} is {base_value}; skipping")
        return 0

    change = fresh_value / base_value - 1.0
    verdict = "slower" if change > 0 else "faster"
    print(
        f"regression gate: {args.key} baseline {base_value:.3f}s -> fresh "
        f"{fresh_value:.3f}s ({abs(change):.1%} {verdict}; threshold "
        f"{args.threshold:.0%})"
    )
    if change > args.threshold:
        print(
            f"FAIL: {args.key} regressed beyond the {args.threshold:.0%} budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
