"""Benchmark regression gate: fail CI when a fresh record is too slow.

Two modes:

**Single pair** — compare one numeric key of a freshly produced
``BENCH_*.json`` against a committed baseline and exit non-zero when the
fresh value exceeds the baseline by more than ``--threshold`` (a slowdown;
getting faster never fails)::

    python benchmarks/check_regression.py baseline.json BENCH_lp_assembly.json \
        --key incremental_total_seconds --threshold 0.25

**Consolidated** (``--all``) — one invocation gates every known
``BENCH_*.json`` at once against a directory of saved baselines::

    mkdir /tmp/bench_baselines && cp BENCH_*.json /tmp/bench_baselines/
    # ... run whichever benchmarks this CI leg runs ...
    python benchmarks/check_regression.py --all \
        --baseline-dir /tmp/bench_baselines --threshold 0.25

``GATES`` maps each record file to its gated keys (some with a per-key
threshold override where the measurement is noisier).  A benchmark that a
CI leg skips leaves the committed record untouched, so baseline == fresh
and the gate reads an exact 0.0% change — the consolidated call is safe on
every leg without per-leg key lists.  Records absent from *both* sides are
skipped with a note; a key missing from a present record is an error
(exit 2), because that means the record format drifted.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: record file -> ((key, threshold-override-or-None), ...)
GATES: dict[str, tuple[tuple[str, float | None], ...]] = {
    "BENCH_lp_assembly.json": (("incremental_total_seconds", None),),
    "BENCH_constraints.json": (("derivation_total_seconds", None),),
    "BENCH_solve.json": (
        ("solve_total_seconds", None),
        ("parallel_solve_total_seconds", None),
    ),
    "BENCH_mc.json": (("vectorized_total_seconds", None),),
    # Queue totals are poll-granular and small; give them a wider budget.
    "BENCH_queue.json": (("queue_batch_total_seconds", 0.75),),
    # Campaign sweeps ride the same fleet: same wide budget.
    "BENCH_fuzz.json": (("campaign_total_seconds", 0.75),),
}


def check_pair(
    baseline_path: str | pathlib.Path,
    fresh_path: str | pathlib.Path,
    key: str,
    threshold: float,
    label: str = "",
) -> int:
    """Gate one key of one record pair.  Returns a process exit code."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(fresh_path) as handle:
        fresh = json.load(handle)

    prefix = f"regression gate{f' [{label}]' if label else ''}"
    try:
        base_value = float(baseline[key])
        fresh_value = float(fresh[key])
    except KeyError as missing:
        print(f"{prefix}: key {missing} absent from a record", file=sys.stderr)
        return 2
    if base_value <= 0:
        print(f"{prefix}: baseline {key} is {base_value}; skipping")
        return 0

    change = fresh_value / base_value - 1.0
    verdict = "slower" if change > 0 else "faster"
    print(
        f"{prefix}: {key} baseline {base_value:.3f}s -> fresh "
        f"{fresh_value:.3f}s ({abs(change):.1%} {verdict}; threshold "
        f"{threshold:.0%})"
    )
    if change > threshold:
        print(
            f"FAIL: {key} regressed beyond the {threshold:.0%} budget",
            file=sys.stderr,
        )
        return 1
    return 0


def check_all(baseline_dir: pathlib.Path, records_dir: pathlib.Path, threshold: float) -> int:
    """Gate every known record; worst exit code wins."""
    worst = 0
    for name, keys in sorted(GATES.items()):
        baseline = baseline_dir / name
        fresh = records_dir / name
        if not baseline.exists() or not fresh.exists():
            side = "baseline" if not baseline.exists() else "fresh record"
            print(f"regression gate [{name}]: no {side}; skipping")
            continue
        for key, override in keys:
            code = check_pair(
                baseline, fresh, key, override if override is not None else threshold,
                label=name,
            )
            worst = max(worst, code)
    return worst


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline", nargs="?", help="committed benchmark record (JSON)"
    )
    parser.add_argument(
        "fresh", nargs="?", help="freshly produced benchmark record (JSON)"
    )
    parser.add_argument(
        "--all", action="store_true",
        help="consolidated mode: gate every known BENCH_*.json at once",
    )
    parser.add_argument(
        "--baseline-dir", type=pathlib.Path, default=None, metavar="DIR",
        help="(--all) directory holding the saved baseline records",
    )
    parser.add_argument(
        "--records-dir", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[1], metavar="DIR",
        help="(--all) directory holding the fresh records (default: repo root)",
    )
    parser.add_argument(
        "--key", default="incremental_total_seconds",
        help="numeric field to compare (default: total wall time of the "
        "incremental backend)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="maximum tolerated relative slowdown (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    if args.all:
        if args.baseline_dir is None:
            parser.error("--all requires --baseline-dir")
        return check_all(args.baseline_dir, args.records_dir, args.threshold)
    if args.baseline is None or args.fresh is None:
        parser.error("need baseline and fresh records (or --all)")
    return check_pair(args.baseline, args.fresh, args.key, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
