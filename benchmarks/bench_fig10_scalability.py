"""Fig. 10: analysis-time scaling on the synthetic program families.

The paper's largest instances have N = 1000 states (~16 kLoC of generated
code) and report near-linear growth of analysis time with N; this harness
uses a smaller grid (Python vs. OCaml) and checks the same *shape*: time
grows subquadratically — dominated by a linear term — in the number of
functions.
"""

import time

import numpy as np
import pytest

from _harness import emit
from repro import AnalysisOptions, analyze
from repro.programs.synthetic import (
    coupon_chain,
    coupon_chain_source,
    rdwalk_chain,
    rdwalk_chain_source,
)

COUPON_GRID = [1, 2, 4, 8, 16, 32, 64]
WALK_GRID = [1, 2, 4, 8]


def _time_analysis(program, moment_degree):
    start = time.perf_counter()
    analyze(
        program,
        AnalysisOptions(moment_degree=moment_degree, template_degree=1),
    )
    return time.perf_counter() - start


def test_fig10a_coupon_chain(benchmark):
    benchmark.pedantic(
        lambda: _time_analysis(coupon_chain(8), 2), rounds=1, iterations=1
    )
    lines = [
        "Fig. 10(a): coupon-collector chains, 2nd-moment analysis",
        f"{'N':>6} {'functions':>10} {'src lines':>10} {'time (s)':>10}",
    ]
    times = []
    for n in COUPON_GRID:
        program = coupon_chain(n)
        elapsed = _time_analysis(program, 2)
        times.append(elapsed)
        lines.append(
            f"{n:>6} {len(program.functions):>10} "
            f"{len(coupon_chain_source(n).splitlines()):>10} {elapsed:>10.3f}"
        )
    ratio = times[-1] / max(times[0], 1e-9)
    growth = ratio / (COUPON_GRID[-1] / COUPON_GRID[0])
    lines.append(f"time({COUPON_GRID[-1]}) / time({COUPON_GRID[0]}) = {ratio:.1f}x "
                 f"for {COUPON_GRID[-1] // COUPON_GRID[0]}x programs "
                 f"(per-N growth factor {growth:.2f})")
    emit("fig10a_coupon_scaling", lines)
    # Subquadratic shape: 32x more functions should cost far less than
    # 32^2 = 1024x more time.
    assert ratio < (COUPON_GRID[-1] / COUPON_GRID[0]) ** 2 / 4


def test_fig10b_rdwalk_chain(benchmark):
    benchmark.pedantic(
        lambda: _time_analysis(rdwalk_chain(4), 2), rounds=1, iterations=1
    )
    lines = [
        "Fig. 10(b): chained non-tail-recursive random walks, 2nd-moment analysis",
        f"{'N':>6} {'functions':>10} {'src lines':>10} {'time (s)':>10}",
    ]
    times = []
    for n in WALK_GRID:
        program = rdwalk_chain(n)
        elapsed = _time_analysis(program, 2)
        times.append(elapsed)
        lines.append(
            f"{n:>6} {len(program.functions):>10} "
            f"{len(rdwalk_chain_source(n).splitlines()):>10} {elapsed:>10.3f}"
        )
    ratio = times[-1] / max(times[0], 1e-9)
    lines.append(f"time({WALK_GRID[-1]}) / time({WALK_GRID[0]}) = {ratio:.1f}x")
    emit("fig10b_rdwalk_scaling", lines)
    assert ratio < (WALK_GRID[-1] / WALK_GRID[0]) ** 2 * 4


def test_chain_bounds_are_sound():
    """The generated programs are not just analyzable — spot-check values."""
    program = coupon_chain(4)
    result = analyze(program, AnalysisOptions(moment_degree=2))
    # E[draws] for 4 coupons = 4/4 + 4/3 + 4/2 + 4/1 = 25/3.
    interval = result.raw_interval(1, {})
    assert interval.hi == pytest.approx(25.0 / 3.0, rel=1e-4)

    from repro.interp.mc import estimate_cost_statistics

    walk = rdwalk_chain(2)
    stats = estimate_cost_statistics(walk, n=1500, seed=23)
    walk_result = analyze(walk, AnalysisOptions(moment_degree=2))
    vals = {v: 0.0 for v in ("x", "s", "t")}
    interval = walk_result.raw_interval(1, vals)
    assert interval.lo - 1.0 <= stats.mean <= interval.hi + 1.0
