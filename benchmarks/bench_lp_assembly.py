"""LP assembly/solve microbenchmark: dense rebuild vs. incremental backend.

Measures the two things the incremental backend changes:

1. **Assembly throughput** — rows ingested per second when a synthetic
   certificate-shaped constraint stream is emitted through ``LPProblem``
   into each backend.
2. **End-to-end analysis time** — the Fig. 10 scalability workload (coupon
   chains and chained random walks) at moment degree 4, where the
   lexicographic solve runs four stages and the incremental backend's
   warm-started model pays off.

The numbers are written to ``BENCH_lp_assembly.json`` at the repo root so
the performance trajectory is recorded across PRs.  ``seed`` holds the
end-to-end timings of the original single-backend engine (commit
``1f4765a``), measured on the same machine grid this file was introduced
on; the ``improvement_vs_seed`` ratio is the acceptance metric (>= 0.20).
"""

import json
import pathlib
import time

import pytest

from _harness import emit, timed_median
from repro import AnalysisOptions, analyze
from repro.logic.handelman import clear_certificate_caches
from repro.lp.affine import AffBuilder, AffForm
from repro.lp.problem import LPProblem
from repro.lp.backends import get_backend
from repro.poly.kernel import clear_plan_caches
from repro.programs.synthetic import coupon_chain, rdwalk_chain

RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_lp_assembly.json"

#: End-to-end seconds of the seed engine (pre-backend-split, commit
#: 1f4765a) on this benchmark grid at moment degree 4.
SEED_SECONDS = {
    "coupon_chain(4)": 0.069,
    "coupon_chain(8)": 0.190,
    "coupon_chain(16)": 0.678,
    "rdwalk_chain(2)": 1.254,
}

WORKLOAD = {
    "coupon_chain(4)": lambda: coupon_chain(4),
    "coupon_chain(8)": lambda: coupon_chain(8),
    "coupon_chain(16)": lambda: coupon_chain(16),
    "rdwalk_chain(2)": lambda: rdwalk_chain(2),
}

MOMENT_DEGREE = 4


def _assembly_rate(backend_name: str, rows: int = 4000, width: int = 12) -> float:
    """Rows/second for a certificate-shaped emission stream."""
    lp = LPProblem(backend=get_backend(backend_name))
    lams = [lp.fresh_nonneg(f"lam{i}") for i in range(width)]
    coeffs = [lp.fresh(f"c{i}") for i in range(width)]
    start = time.perf_counter()
    for r in range(rows):
        builder = AffBuilder()
        builder += AffForm.of_var(coeffs[r % width])
        for j, lam in enumerate(lams):
            builder.add_var(lam, -float(1 + (r + j) % 7))
        lp.add_eq(builder, note=f"cert{r}")
    elapsed = time.perf_counter() - start
    assert lp.num_constraints == rows
    return rows / elapsed


def _time_workload(backend_name: str) -> dict[str, float]:
    """Median-of-k end-to-end analysis time per workload program.

    Each round starts from a fresh pipeline with the process-wide symbolic
    memo tables cleared, so warm-up rounds cannot turn the measurement into
    a cache-hit benchmark; the CI regression gate then compares medians
    instead of single noisy runs.
    """
    times = {}
    for name, make in WORKLOAD.items():
        program = make()

        def reset():
            clear_certificate_caches()
            clear_plan_caches()

        median, _ = timed_median(
            lambda: analyze(
                program,
                AnalysisOptions(moment_degree=MOMENT_DEGREE, backend=backend_name),
            ),
            rounds=3,
            warmup=1,
            setup=reset,
        )
        times[name] = median
    return times


def test_lp_assembly_and_solve(benchmark):
    benchmark.pedantic(
        lambda: _time_workload("incremental"), rounds=1, iterations=1
    )
    assembly = {
        name: _assembly_rate(name) for name in ("dense", "incremental")
    }
    end_to_end = {
        name: _time_workload(name) for name in ("incremental", "dense")
    }

    seed_total = sum(SEED_SECONDS.values())
    incr_total = sum(end_to_end["incremental"].values())
    dense_total = sum(end_to_end["dense"].values())
    improvement = 1.0 - incr_total / seed_total

    lines = [
        f"LP assembly microbenchmark ({MOMENT_DEGREE}th-moment fig10 workload)",
        f"{'case':>18} {'seed (s)':>9} {'dense (s)':>10} {'incr (s)':>9}",
    ]
    for name in WORKLOAD:
        lines.append(
            f"{name:>18} {SEED_SECONDS[name]:>9.3f} "
            f"{end_to_end['dense'][name]:>10.3f} "
            f"{end_to_end['incremental'][name]:>9.3f}"
        )
    lines.append(
        f"{'total':>18} {seed_total:>9.3f} {dense_total:>10.3f} {incr_total:>9.3f}"
    )
    lines.append(f"improvement vs seed: {improvement:.1%}")
    lines.append(
        "assembly rate: "
        + ", ".join(f"{k} {v:,.0f} rows/s" for k, v in assembly.items())
    )
    emit("lp_assembly", lines)

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": f"fig10 programs at moment degree {MOMENT_DEGREE}",
                "seed_commit": "1f4765a",
                "seed_seconds": SEED_SECONDS,
                "dense_seconds": end_to_end["dense"],
                "incremental_seconds": end_to_end["incremental"],
                "seed_total_seconds": round(seed_total, 3),
                "dense_total_seconds": round(dense_total, 3),
                "incremental_total_seconds": round(incr_total, 3),
                "improvement_vs_seed": round(improvement, 4),
                "assembly_rows_per_second": {
                    k: round(v) for k, v in assembly.items()
                },
            },
            indent=2,
        )
        + "\n"
    )

    # Acceptance: the incremental default beats the seed engine by >= 20%
    # end-to-end on this workload.  The recorded seed timings are from the
    # machine this file was introduced on; on other hardware the dense
    # backend — which is exactly the seed solving path — is the proxy.
    vs_dense = 1.0 - incr_total / dense_total
    assert max(improvement, vs_dense) >= 0.20, (
        f"end-to-end improvement below the 20% floor: vs seed {improvement:.1%} "
        f"(seed {seed_total:.3f}s), vs dense {vs_dense:.1%} "
        f"(dense {dense_total:.3f}s, incremental {incr_total:.3f}s)"
    )
    # And triplet-buffer ingestion must not be slower than dict-row storage.
    assert assembly["incremental"] >= 0.8 * assembly["dense"]


def test_incremental_appends_stage_cuts():
    """Spot-check on a real program: 4 stages, 1 model build, 3 cut rows.

    The reduction layer is forced off — it routes solves to per-block
    backend instances (covered by ``bench_solve.py``); this spot-check is
    about the *direct* incremental path.
    """
    from repro import AnalysisPipeline
    from repro.lp.reduce import reduce_override

    pipe = AnalysisPipeline(coupon_chain(2))
    options = AnalysisOptions(moment_degree=4, backend="incremental")
    with reduce_override(False):
        pipe.analyze(options)
    stats = pipe.constraint_system(options).lp.backend.stats
    assert stats.model_builds == 1
    assert stats.rows_appended == MOMENT_DEGREE - 1
