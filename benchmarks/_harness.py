"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper; the numbers
are printed (run ``pytest benchmarks/ --benchmark-only -s`` to see them) and
appended to ``benchmarks/results/*.txt`` so EXPERIMENTS.md can reference a
stable artifact.
"""

from __future__ import annotations

import pathlib
import statistics
import time
from typing import Callable

from repro import AnalysisOptions, analyze
from repro.analysis.results import MomentBoundResult
from repro.programs import registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def timed_median(
    fn: Callable[[], object],
    *,
    rounds: int = 3,
    warmup: int = 1,
    setup: Callable[[], object] | None = None,
) -> tuple[float, list[float]]:
    """Median-of-``rounds`` wall time of ``fn``, after ``warmup`` runs.

    The CI regression gate compares one number per benchmark against a
    committed baseline; a single run is hostage to scheduler noise, so every
    timed benchmark reports the median of several measured rounds with the
    first (cache/JIT/allocator-warming) runs discarded.  ``setup`` runs
    before *every* round, outside the timed window — use it to reset
    process-wide memo tables so each round measures a cold start.
    Returns ``(median_seconds, measured_times)``.
    """
    times: list[float] = []
    for i in range(warmup + rounds):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if i >= warmup:
            times.append(elapsed)
    return statistics.median(times), times


def run_registered(
    name: str,
    moment_degree: int | None = None,
    **overrides,
) -> MomentBoundResult:
    """Analyze a registered benchmark with its registered options."""
    bench = registry.get(name)
    options = AnalysisOptions(
        moment_degree=moment_degree or bench.moment_degree,
        template_degree=overrides.pop("template_degree", bench.template_degree),
        degree_cap=overrides.pop("degree_cap", bench.degree_cap),
        objective_valuations=overrides.pop(
            "objective_valuations",
            (bench.valuation,) + tuple(bench.extra_valuations),
        ),
        **overrides,
    )
    return analyze(registry.parsed(name), options)


def emit(report_name: str, lines: list[str]) -> None:
    """Print a report and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{report_name}.txt").write_text(text + "\n")


def fmt(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
        return f"{value:.4g}"
    return f"{value:,.4g}"
