"""Table 2 and Fig. 11: distribution shape via higher central moments.

Two random-walk variants with the same expected runtime (E[T] = 2x) but
different step laws.  Variant 2 idles and rarely jumps, so its runtime is
more right-skewed with heavier tails: larger skewness and kurtosis, visible
both in the derived moment bounds (Table 2) and in simulated density
estimates (Fig. 11).
"""

import numpy as np
import pytest

from _harness import emit, fmt, run_registered
from repro.interp.mc import density_histogram, estimate_cost_statistics
from repro.programs import registry

NAMES = ("rdwalk-var1", "rdwalk-var2")


@pytest.fixture(scope="module")
def results():
    return {name: run_registered(name) for name in NAMES}


@pytest.fixture(scope="module")
def simulations():
    """Per-program :class:`CostStatistics` (vectorized engine); the stored
    sample array feeds the density/tail queries below."""
    out = {}
    for name in NAMES:
        bench = registry.get(name)
        out[name] = estimate_cost_statistics(
            registry.parsed(name),
            n=20_000,
            seed=29,
            initial=bench.sim_init,
            engine="vectorized",
        )
    return out


def test_table2_skewness_kurtosis(benchmark, results, simulations):
    benchmark.pedantic(
        lambda: run_registered("rdwalk-var1"), rounds=1, iterations=1
    )
    lines = [
        "Table 2: shape statistics (upper estimates from moment bounds; "
        "MC = simulation ground truth)",
        f"{'program':<14} {'E[T] bound':>12} {'MC mean':>9} "
        f"{'skew(bound)':>12} {'skew(MC)':>9} {'kurt(bound)':>12} {'kurt(MC)':>9}",
    ]
    shape = {}
    for name in NAMES:
        bench = registry.get(name)
        result = results[name]
        stats = simulations[name]
        skew_mc, kurt_mc = stats.skewness, stats.kurtosis
        skew_b = result.skewness_upper(bench.valuation)
        kurt_b = result.kurtosis_upper(bench.valuation)
        shape[name] = (skew_b, kurt_b, skew_mc, kurt_mc)
        e1 = result.raw_interval(1, bench.valuation)
        lines.append(
            f"{name:<14} {fmt(e1.hi):>12} {stats.mean:>9.2f} "
            f"{skew_b:>12.3f} {skew_mc:>9.3f} {kurt_b:>12.3f} {kurt_mc:>9.3f}"
        )
    lines.append(
        "paper (different constants): rdwalk-1 skew 2.136 kurt 10.563; "
        "rdwalk-2 skew 2.964 kurt 17.582"
    )
    emit("table2_shape", lines)

    # The ordering is the claim: variant 2 is more skewed and heavier-tailed,
    # in both the simulation and the derived upper estimates.
    assert shape["rdwalk-var2"][2] > shape["rdwalk-var1"][2]
    assert shape["rdwalk-var2"][3] > shape["rdwalk-var1"][3]
    for name in NAMES:
        skew_b, kurt_b, skew_mc, kurt_mc = shape[name]
        assert skew_b >= skew_mc * 0.8
        assert kurt_b >= kurt_mc * 0.8


def test_table2_equal_means(results):
    """Both variants have E[T] = 2x (equal expected runtimes)."""
    for name in NAMES:
        bench = registry.get(name)
        interval = results[name].raw_interval(1, bench.valuation)
        assert interval.hi == pytest.approx(2 * bench.valuation["x"], rel=1e-3)


def test_fig11_density_estimates(benchmark, simulations):
    benchmark.pedantic(
        lambda: density_histogram(simulations["rdwalk-var1"].costs),
        rounds=3,
        iterations=1,
    )
    lines = ["Fig. 11: runtime density estimates (normalized histograms)"]
    for name in NAMES:
        stats = simulations[name]
        mids, dens = density_histogram(stats.costs, bins=24)
        peak = float(mids[np.argmax(dens)])
        p95 = stats.quantile(0.95)
        lines.append(f"-- {name}: mode near {peak:.0f}, 95th percentile {p95:.0f}")
        scale = 60.0 / max(dens)
        for m, v in zip(mids, dens):
            lines.append(f"{m:>8.1f} | " + "#" * int(round(v * scale)))
    emit("fig11_densities", lines)
    # Heavier tail for variant 2, in both quantile and tail-probability
    # form (the latter via the sample array stored on CostStatistics).
    var1, var2 = simulations["rdwalk-var1"], simulations["rdwalk-var2"]
    assert var2.quantile(0.99) / var2.mean > var1.quantile(0.99) / var1.mean
    for factor in (2.0, 3.0):
        assert var2.tail_probability(factor * var2.mean) > var1.tail_probability(
            factor * var1.mean
        )
