"""Table 6: upper *and lower* expected-cost bounds, non-monotone costs.

The Wang et al. [43] suite: rewards (negative ticks) make the raw-moment
baseline inapplicable; the interval analysis produces both bounds, with the
Theorem 4.4 side conditions checked.
"""

import pytest

from _harness import emit, fmt, run_registered
from repro.programs import registry
from repro.programs.wang import WANG_NAMES


def test_table6_interval_bounds(benchmark):
    benchmark.pedantic(
        lambda: run_registered("wang-bitcoin-mining"), rounds=3, iterations=1
    )
    lines = [
        "Table 6: expected-cost interval bounds (non-monotone costs)",
        f"{'program':<24} {'lower':>12} {'upper':>12} {'time(s)':>8}  "
        "symbolic upper (paper's)",
    ]
    for name in WANG_NAMES:
        bench = registry.get(name)
        result = run_registered(name)
        interval = result.raw_interval(1, bench.valuation)
        lines.append(
            f"{name:<24} {fmt(interval.lo):>12} {fmt(interval.hi):>12} "
            f"{result.solve_seconds:>8.3f}  {result.upper_str(1)}   "
            f"({bench.paper['upper']})"
        )
        assert interval.lo <= interval.hi
    emit("table6_nonmonotone", lines)


def test_table6_bitcoin_exact(benchmark):
    """bitcoin-mining's reward is exactly -1.5x; both bounds must agree."""
    result = benchmark.pedantic(
        lambda: run_registered("wang-bitcoin-mining"), rounds=1, iterations=1
    )
    interval = result.raw_interval(1, {"x": 10.0})
    assert interval.hi == pytest.approx(-15.0, rel=1e-6)
    assert interval.lo == pytest.approx(-15.0, rel=1e-6)


@pytest.mark.parametrize("name", WANG_NAMES)
def test_table6_brackets_simulation(benchmark, name):
    from repro.interp.mc import estimate_cost_statistics

    bench = registry.get(name)
    result = benchmark.pedantic(
        lambda: run_registered(name), rounds=1, iterations=1
    )
    stats = estimate_cost_statistics(
        registry.parsed(name), n=1200, seed=37, initial=bench.sim_init
    )
    interval = result.raw_interval(1, bench.valuation)
    slack = 0.12 * abs(stats.mean) + 1.0
    assert interval.lo - slack <= stats.mean <= interval.hi + slack, (
        name,
        stats.mean,
        interval,
    )


def test_table6_soundness_conditions(benchmark):
    """Lower bounds need Thm 4.4; every suite program satisfies it."""
    from repro.soundness.checker import check_soundness

    report = benchmark.pedantic(
        lambda: check_soundness(registry.parsed("wang-bitcoin-mining"), 1),
        rounds=1,
        iterations=1,
    )
    assert report.ok
    for name in WANG_NAMES:
        assert check_soundness(registry.parsed(name), 1).bounded_update.ok, name
