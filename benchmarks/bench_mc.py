"""Monte-Carlo engine benchmark: scalar ``Machine`` vs. the batched engine.

The Fig. 10 scalability workload (the same program set as ``bench_cache`` /
``bench_lp_assembly``: coupon chains at N = 4/8/16 plus the chained random
walk) is simulated at 10,000 trajectories per program with both engines.
The trajectory *distributions* are identical; what is measured is wall
time.  The numbers go to ``BENCH_mc.json`` at the repo root, and CI gates
``vectorized_total_seconds`` against the committed baseline with
``check_regression.py``.

Acceptance: the vectorized engine is at least ``SPEEDUP_FLOOR``x faster on
the whole workload.
"""

import json
import pathlib
import time

import numpy as np

from _harness import emit
from repro.interp.mc import simulate_costs
from repro.programs.synthetic import coupon_chain, rdwalk_chain

RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_mc.json"

WORKLOAD = {
    "coupon_chain(4)": lambda: coupon_chain(4),
    "coupon_chain(8)": lambda: coupon_chain(8),
    "coupon_chain(16)": lambda: coupon_chain(16),
    "rdwalk_chain(2)": lambda: rdwalk_chain(2),
}

TRAJECTORIES = 10_000
SPEEDUP_FLOOR = 20.0
#: The vectorized side is timed best-of; the scalar side is too slow to
#: repeat and is timed once (its noise only perturbs the ratio upward or
#: downward by a few percent, far from the floor's scale).
VECTORIZED_ROUNDS = 3


def _time_engine(program, engine: str, rounds: int) -> tuple[float, np.ndarray]:
    best = float("inf")
    costs = None
    for _ in range(rounds):
        start = time.perf_counter()
        costs = simulate_costs(program, TRAJECTORIES, seed=1, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best, costs


def test_mc_engine_speedup(benchmark):
    programs = {name: make() for name, make in WORKLOAD.items()}

    scalar_times: dict[str, float] = {}
    vector_times: dict[str, float] = {}
    lines = [
        f"Monte-Carlo engine benchmark ({TRAJECTORIES} trajectories/program)",
        f"{'case':>18} {'machine (s)':>12} {'vectorized (s)':>15} "
        f"{'speedup':>8} {'mean drift':>11}",
    ]
    for name, program in programs.items():
        scalar_seconds, scalar_costs = _time_engine(program, "machine", 1)
        vector_seconds, vector_costs = _time_engine(
            program, "vectorized", VECTORIZED_ROUNDS
        )
        scalar_times[name] = scalar_seconds
        vector_times[name] = vector_seconds
        # Distributional sanity: both engines estimate the same mean.
        drift = abs(float(np.mean(scalar_costs)) - float(np.mean(vector_costs)))
        scale = max(1.0, abs(float(np.mean(scalar_costs))))
        assert drift / scale < 0.05, (name, drift)
        lines.append(
            f"{name:>18} {scalar_seconds:>12.3f} {vector_seconds:>15.4f} "
            f"{scalar_seconds / vector_seconds:>7.1f}x {drift:>11.3f}"
        )

    benchmark.pedantic(
        lambda: simulate_costs(
            programs["coupon_chain(8)"], TRAJECTORIES, seed=1, engine="vectorized"
        ),
        rounds=3,
        iterations=1,
    )

    scalar_total = sum(scalar_times.values())
    vector_total = sum(vector_times.values())
    speedup = scalar_total / vector_total
    lines.append(
        f"{'total':>18} {scalar_total:>12.3f} {vector_total:>15.4f} "
        f"{speedup:>7.1f}x"
    )
    emit("mc_engine", lines)

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": f"fig10 programs at {TRAJECTORIES} trajectories",
                "machine_seconds": {k: round(v, 4) for k, v in scalar_times.items()},
                "vectorized_seconds": {
                    k: round(v, 4) for k, v in vector_times.items()
                },
                "machine_total_seconds": round(scalar_total, 4),
                "vectorized_total_seconds": round(vector_total, 4),
                "speedup": round(speedup, 2),
                "speedup_floor": SPEEDUP_FLOOR,
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized engine only {speedup:.1f}x faster than the scalar "
        f"machine on the fig10 workload (machine {scalar_total:.3f}s, "
        f"vectorized {vector_total:.3f}s); floor is {SPEEDUP_FLOOR}x"
    )
