"""Constraint-derivation microbenchmark: the vectorized symbolic kernel.

Times stage 3 of the pipeline (``AnalysisPipeline.constraint_system``) in
isolation on the Fig. 10 scalability programs at moment degree 4 — the
workload whose profile motivated the symbolic kernel (interned monomials,
memoized certificate bases, vectorized λ-column emission, substitution
plans).  Three configurations are measured:

* ``kernel``  — the default path (``REPRO_DISABLE_POLY_KERNEL`` unset),
* ``legacy``  — the dict-path fallback behind the kill switch,
* ``seed``    — hardcoded pre-kernel timings (commit ``18c0ce8``) from the
  machine grid this file was introduced on; the acceptance metric is
  ``seed_total / kernel_total >= 2``.

Every measured round resets the process-wide certificate-basis and
substitution-plan memo tables, so the numbers are honest cold-start
derivations (within-run reuse only — exactly what one ``analyze`` call
sees).  Timing is median-of-k via :func:`_harness.timed_median`.

Results land in ``BENCH_constraints.json`` at the repo root (CI gates the
``derivation_total_seconds`` key against the committed baseline) and also
record the per-stage static/context/derive/solve split of a full analysis,
so future perf work starts from the same data this PR did.
"""

import json
import pathlib
import time

from _harness import emit, timed_median
from repro import AnalysisOptions, AnalysisPipeline
from repro.logic.handelman import clear_certificate_caches
from repro.poly.kernel import clear_plan_caches, kernel_override
from repro.programs.synthetic import coupon_chain, rdwalk_chain

RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_constraints.json"

#: Stage-3 (constraint derivation) seconds of the pre-kernel analyzer
#: (commit 18c0ce8) on this benchmark grid at moment degree 4.
SEED_SECONDS = {
    "coupon_chain(4)": 0.013,
    "coupon_chain(8)": 0.027,
    "coupon_chain(16)": 0.055,
    "rdwalk_chain(2)": 0.155,
    "rdwalk_chain(3)": 0.258,
}

WORKLOAD = {
    "coupon_chain(4)": lambda: coupon_chain(4),
    "coupon_chain(8)": lambda: coupon_chain(8),
    "coupon_chain(16)": lambda: coupon_chain(16),
    "rdwalk_chain(2)": lambda: rdwalk_chain(2),
    "rdwalk_chain(3)": lambda: rdwalk_chain(3),
}

MOMENT_DEGREE = 4
ROUNDS = 3
WARMUP = 1


def _reset_memos() -> None:
    clear_certificate_caches()
    clear_plan_caches()


def _derivation_seconds(make, kernel: bool) -> float:
    """Median cold-memo derivation time with the kernel forced on/off.

    Stages 1+2 are primed in the (untimed) per-round setup: this benchmark
    times constraint derivation, not parsing/abstract interpretation.  A
    fresh pipeline per round keeps the stage-3 instance cache cold.
    """
    state: dict = {}

    def setup():
        _reset_memos()
        pipe = AnalysisPipeline(make())
        pipe.static_info()
        pipe.context_map()
        state["pipe"] = pipe

    def run():
        with kernel_override(kernel):
            state["pipe"].constraint_system(
                AnalysisOptions(moment_degree=MOMENT_DEGREE)
            )

    median, _ = timed_median(run, rounds=ROUNDS, warmup=WARMUP, setup=setup)
    return median


def _stage_split(make) -> dict[str, float]:
    """Per-stage wall times of one cold full analysis (kernel on)."""
    _reset_memos()
    pipe = AnalysisPipeline(make())
    options = AnalysisOptions(moment_degree=MOMENT_DEGREE)
    split = {}
    start = time.perf_counter()
    pipe.static_info()
    split["static"] = time.perf_counter() - start
    start = time.perf_counter()
    pipe.context_map()
    split["context"] = time.perf_counter() - start
    start = time.perf_counter()
    pipe.constraint_system(options)
    split["constraints"] = time.perf_counter() - start
    start = time.perf_counter()
    pipe.analyze(options)
    split["solve_and_resolve"] = time.perf_counter() - start
    return {k: round(v, 4) for k, v in split.items()}


def test_constraint_derivation(benchmark):
    benchmark.pedantic(
        lambda: _derivation_seconds(WORKLOAD["coupon_chain(4)"], True),
        rounds=1, iterations=1,
    )
    kernel = {n: _derivation_seconds(m, True) for n, m in WORKLOAD.items()}
    legacy = {n: _derivation_seconds(m, False) for n, m in WORKLOAD.items()}
    split = _stage_split(WORKLOAD["rdwalk_chain(2)"])

    kernel_total = sum(kernel.values())
    legacy_total = sum(legacy.values())
    seed_total = sum(SEED_SECONDS.values())
    speedup_vs_seed = seed_total / kernel_total
    speedup_vs_legacy = legacy_total / kernel_total

    lines = [
        f"Constraint-derivation benchmark ({MOMENT_DEGREE}th-moment fig10 workload)",
        f"{'case':>18} {'seed (s)':>9} {'legacy (s)':>11} {'kernel (s)':>11}",
    ]
    for name in WORKLOAD:
        lines.append(
            f"{name:>18} {SEED_SECONDS[name]:>9.3f} "
            f"{legacy[name]:>11.3f} {kernel[name]:>11.3f}"
        )
    lines.append(
        f"{'total':>18} {seed_total:>9.3f} {legacy_total:>11.3f} "
        f"{kernel_total:>11.3f}"
    )
    lines.append(
        f"speedup: {speedup_vs_seed:.2f}x vs seed, "
        f"{speedup_vs_legacy:.2f}x vs kernel-off"
    )
    lines.append(
        "rdwalk_chain(2) stage split: "
        + ", ".join(f"{k} {v:.3f}s" for k, v in split.items())
    )
    emit("constraint_derivation", lines)

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": f"fig10 programs at moment degree {MOMENT_DEGREE}, "
                "stage-3 derivation only",
                "seed_commit": "18c0ce8",
                "rounds": ROUNDS,
                "warmup": WARMUP,
                "timing": "median of rounds, memo tables cleared per round",
                "seed_seconds": SEED_SECONDS,
                "legacy_seconds": {k: round(v, 4) for k, v in legacy.items()},
                "kernel_seconds": {k: round(v, 4) for k, v in kernel.items()},
                "seed_total_seconds": round(seed_total, 4),
                "legacy_total_seconds": round(legacy_total, 4),
                "derivation_total_seconds": round(kernel_total, 4),
                "speedup_vs_seed": round(speedup_vs_seed, 3),
                "speedup_vs_legacy": round(speedup_vs_legacy, 3),
                "stage_split_rdwalk_chain_2": split,
            },
            indent=2,
        )
        + "\n"
    )

    # Acceptance: >= 2x end-to-end derivation speedup vs the pre-kernel
    # analyzer on this workload.  The recorded seed timings are from the
    # machine this file was introduced on; on other hardware the kill-switch
    # path — everything except the kernel itself — is the proxy, with a
    # floor that the kernel must beat it.
    assert speedup_vs_seed >= 2.0 or speedup_vs_legacy >= 1.10, (
        f"derivation speedup below the floor: {speedup_vs_seed:.2f}x vs seed "
        f"(seed {seed_total:.3f}s), {speedup_vs_legacy:.2f}x vs kernel-off "
        f"(legacy {legacy_total:.3f}s, kernel {kernel_total:.3f}s)"
    )


def test_certificate_basis_is_memoized():
    """One derivation computes each (context, degree) product set once."""
    from repro.logic.handelman import certificate_cache_stats

    _reset_memos()
    with kernel_override(True):
        pipe = AnalysisPipeline(rdwalk_chain(2))
        pipe.constraint_system(AnalysisOptions(moment_degree=MOMENT_DEGREE))
    bases = certificate_cache_stats()["bases"]
    assert 0 < bases < 100, f"unexpected basis cache population: {bases}"
