from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Central moment analysis for cost accumulators in probabilistic "
        "programs (PLDI 2021 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
